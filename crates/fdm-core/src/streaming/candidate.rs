//! Bounded greedy candidates `S_µ` — the building block of Algorithm 1.
//!
//! A candidate for guess `µ` accepts an arriving element iff it is not full
//! and the element is at distance ≥ µ from everything already kept
//! (Algorithm 1, lines 4–6). Two invariants follow directly and are relied
//! on by every proof in the paper:
//!
//! * `div(S_µ) ≥ µ` at all times;
//! * if the candidate is not full after the stream, every stream element is
//!   within `< µ` of it (it was rejected for proximity, not capacity).
//!
//! Candidates do not own coordinates: they keep [`PointId`]s into a shared
//! [`PointStore`] arena, and every distance test runs over contiguous arena
//! rows in *proxy space* (squared Euclidean, etc. — see
//! [`Metric::proxy_from_dist`]), so the hot threshold test performs no
//! `sqrt`/`acos` at all.

use crate::kernel::{self, PrefilterKind};
use crate::metric::Metric;
use crate::point::{Element, PointId, PointStore};

/// Per-arrival cache of proxy distances from one arriving point to arena
/// rows, shared across every candidate of a guess ladder.
///
/// The ladder offers each arriving element to `O(m · log₁₊ε(∆))`
/// candidates, and their member lists overlap heavily (an element accepted
/// at guess `µ` typically sits in many neighboring guesses' candidates and
/// in both the blind and its group's ladder). Without the cache, each
/// candidate re-evaluates the distance kernel against the same arena rows;
/// with it, each `(arrival, arena row)` pair costs exactly one full-kernel
/// evaluation and every further test is an array lookup.
///
/// Decisions are **bit-identical** to the bounded per-candidate scans: the
/// `*_at_least` kernels are association-identical to their full-sum
/// counterparts and every term is non-negative, so `full_proxy ≥ bound`
/// agrees exactly with the early-exit comparison (pinned by
/// `tests/kernel_parity.rs`).
///
/// When the arena has a synced `f32` mirror and the kernel policy allows it
/// (see [`kernel::prefilter_enabled`]), [`ArrivalProxies::at_least`] first
/// evaluates the proxy in `f32` against a certified error envelope and only
/// runs the exact `f64` kernel when the bound falls inside the band — so
/// threshold decisions stay bit-identical while most tests never touch the
/// `f64` rows. What is cached per `(arrival, row)` is the *certified
/// interval* `[p32 − err, p32 + err]`, not the raw `f32` value: candidates
/// re-testing the row against other thresholds pay two comparisons — the
/// same cost as the exact-slot lookup — instead of re-deriving the
/// envelope. Counter updates batch into plain fields and flush to the
/// arena's atomic counters once per arrival
/// ([`ArrivalProxies::flush_prefilter_counters`]); a per-probe `fetch_add`
/// would cost more than the memoized test it instruments.
#[derive(Debug, Clone, Default)]
pub struct ArrivalProxies {
    /// Exact proxy to arena row `i`, valid iff `stamps[i] == epoch`.
    vals: Vec<f64>,
    /// Arrival counter at which each exact slot was last written.
    stamps: Vec<u64>,
    /// Lower edge of row `i`'s certified band (`p32 − err`): bounds at or
    /// below it are certified `true`. Valid iff `stamps32[i] == epoch`.
    lo32: Vec<f64>,
    /// Upper edge of row `i`'s certified band (`p32 + err`): bounds above
    /// it are certified `false`; bounds inside `(lo, hi]` fall back to the
    /// exact kernel. Valid iff `stamps32[i] == epoch`.
    hi32: Vec<f64>,
    /// Arrival counter at which each certified-band slot was last written.
    stamps32: Vec<u64>,
    /// Current arrival's generation stamp (epoch-stamping makes the
    /// per-arrival reset O(1) instead of an arena-length clear).
    epoch: u64,
    /// L2 norm (`√norm_sq`) of the current arrival (0 unless the metric
    /// uses norms).
    norm: f64,
    /// The arriving point converted once to `f32` (pre-filter only).
    point32: Vec<f32>,
    /// Pre-filter error envelope for this arrival: `err = base + slope·p32`.
    err_base: f64,
    err_slope: f64,
    /// `Some(kind)` iff the pre-filter is armed for the current arrival.
    prefilter: Option<PrefilterKind>,
    /// Pre-filter hits not yet flushed to the arena's atomic counters.
    pending_hits: u64,
    /// Pre-filter fallbacks not yet flushed to the arena's atomic counters.
    pending_fallbacks: u64,
}

impl ArrivalProxies {
    /// Creates an empty cache.
    pub fn new() -> Self {
        ArrivalProxies::default()
    }

    /// Resets the slot arrays for an arena of `arena_len` rows: every slot
    /// becomes "unknown" by bumping the generation stamp; slot storage
    /// grows but is never rewritten.
    fn reset(&mut self, arena_len: usize) {
        if self.stamps.len() < arena_len {
            // Stamp 0 is never a valid epoch (the first arrival uses 1).
            self.stamps.resize(arena_len, 0);
            self.vals.resize(arena_len, 0.0);
            self.stamps32.resize(arena_len, 0);
            self.lo32.resize(arena_len, 0.0);
            self.hi32.resize(arena_len, 0.0);
        }
        self.epoch += 1;
    }

    /// Resets the cache for a new arriving `point`: computes its norm once
    /// (for norm-using metrics) and arms the `f32` pre-filter when the
    /// metric admits one, the kernel policy allows it, and the arena's
    /// mirror is synced (see [`PointStore::sync_f32_mirror`]).
    pub fn begin_arrival(&mut self, store: &PointStore, metric: Metric, point: &[f64]) {
        self.reset(store.len());
        self.norm = if metric.uses_norms() {
            kernel::norm_sq(point).sqrt()
        } else {
            0.0
        };
        self.prefilter = None;
        if kernel::prefilter_enabled(metric) {
            if let Some(mirror) = store.f32_mirror() {
                let kind = kernel::prefilter_kind(metric).expect("enabled implies a kind");
                self.point32.clear();
                self.point32.reserve(point.len());
                let mut max_abs = mirror.max_abs();
                for &c in point {
                    max_abs = max_abs.max(c.abs());
                    self.point32.push(c as f32);
                }
                let (base, slope) = kernel::f32_error_coefficients(kind, point.len(), max_abs);
                self.err_base = base;
                self.err_slope = slope;
                self.prefilter = Some(kind);
            }
        }
    }

    /// The exact proxy distance from the arriving `point` to arena row
    /// `id`, computing it on first use (cached norms from the arena, the
    /// arrival norm from [`ArrivalProxies::begin_arrival`]).
    #[inline]
    pub fn proxy(&mut self, store: &PointStore, metric: Metric, point: &[f64], id: PointId) -> f64 {
        let i = id.index();
        if self.stamps[i] != self.epoch {
            self.stamps[i] = self.epoch;
            self.vals[i] =
                metric.proxy_with_sqrt_norms(point, store.row(id), self.norm, store.norm(id));
        }
        self.vals[i]
    }

    /// Whether `proxy(point, row id) ≥ bound`, deciding through the `f32`
    /// pre-filter when it is armed and the margin clears the certified
    /// band; otherwise (and always once an exact value is cached) through
    /// the exact `f64` proxy. Decisions are bit-identical to
    /// [`ArrivalProxies::proxy`]` ≥ bound` — the pre-filter only answers
    /// when it provably agrees. Hits and fallbacks accumulate in plain
    /// pending fields; callers flush them with
    /// [`ArrivalProxies::flush_prefilter_counters`] (hot paths do it once
    /// per arrival, after the probe loop).
    #[inline]
    pub fn at_least(
        &mut self,
        store: &PointStore,
        metric: Metric,
        point: &[f64],
        id: PointId,
        bound: f64,
    ) -> bool {
        let i = id.index();
        if self.stamps[i] == self.epoch {
            return self.vals[i] >= bound;
        }
        if let Some(kind) = self.prefilter {
            if let Some(mirror) = store.f32_mirror() {
                if self.stamps32[i] != self.epoch {
                    let p32 = f64::from(kernel::proxy_f32(kind, &self.point32, mirror.row(id)));
                    let err = self.err_base + self.err_slope * p32;
                    // Certified band: bounds ≤ lo are provably `true`,
                    // bounds > hi provably `false`, anything inside falls
                    // back. A non-finite proxy or envelope certifies
                    // nothing — an empty band forces the fallback path,
                    // exactly like `kernel::certified_at_least`.
                    let (lo, hi) = if p32.is_finite() && err.is_finite() {
                        (p32 - err, p32 + err)
                    } else {
                        (f64::NEG_INFINITY, f64::INFINITY)
                    };
                    self.stamps32[i] = self.epoch;
                    self.lo32[i] = lo;
                    self.hi32[i] = hi;
                }
                if bound <= self.lo32[i] {
                    self.pending_hits += 1;
                    return true;
                }
                if bound > self.hi32[i] {
                    self.pending_hits += 1;
                    return false;
                }
                self.pending_fallbacks += 1;
            }
        }
        self.proxy(store, metric, point, id) >= bound
    }

    /// Flushes the pending pre-filter hit/fallback tallies to the arena's
    /// atomic counters (surfaced through `STATS`). Hot insert paths call
    /// this once per arrival rather than paying a `fetch_add` per probe.
    #[inline]
    pub fn flush_prefilter_counters(&mut self, store: &PointStore) {
        if self.pending_hits != 0 || self.pending_fallbacks != 0 {
            store.record_prefilter(self.pending_hits, self.pending_fallbacks);
            self.pending_hits = 0;
            self.pending_fallbacks = 0;
        }
    }

    /// Populates the cache with the exact proxy to **every** arena row for
    /// one arriving point (with squared norm `norm_sq`). This is the
    /// batch-path entry ([`BatchProxies::compute`] fills one cache per
    /// batch element and keeps the dense value rows for read-only sharing
    /// across lanes); the pre-filter stays disarmed — a dense table fills
    /// every slot exactly once, so there is nothing to skip.
    pub fn fill(&mut self, store: &PointStore, metric: Metric, point: &[f64], norm_sq: f64) {
        self.reset(store.len());
        self.norm = norm_sq.sqrt();
        self.prefilter = None;
        for id in store.ids() {
            self.proxy(store, metric, point, id);
        }
    }
}

/// Batch-wide proxy table: one fully-populated [`ArrivalProxies`] row per
/// batch element, computed concurrently (under the `parallel` feature)
/// before the lanes probe.
///
/// The candidate-major batch path used to re-evaluate the distance kernel
/// for the same `(batch element, arena row)` pair in every lane whose
/// member list contains that row — and the lanes of a guess ladder overlap
/// heavily (ROADMAP's "batch-path arrival cache" lever). Routing the batch
/// through this table makes each pair cost exactly one kernel evaluation,
/// mirroring what [`ArrivalProxies`] already does for the element-by-element
/// path. Decisions are **bit-identical** to the uncached probes: the full
/// proxy is compared against the same `µ` threshold the bounded
/// `proxy_at_least` scans test (pinned by `tests/batch_cache.rs`).
#[derive(Debug)]
pub struct BatchProxies {
    /// Row-major `batch × arena` proxies; row stride = `arena_len`.
    rows: Vec<f64>,
    arena_len: usize,
}

impl BatchProxies {
    /// Computes the full `batch × arena` proxy table, one row per batch
    /// element, in parallel over batch elements when available. Each row
    /// is computed through one [`ArrivalProxies`] (the same memoization
    /// the element path uses) but only the dense values are kept — the
    /// lazy-reuse stamps would double the table's footprint for a path
    /// that fills every slot exactly once.
    pub fn compute(
        sequential: bool,
        store: &PointStore,
        metric: Metric,
        batch: &[Element],
        norms: &[f64],
    ) -> BatchProxies {
        debug_assert_eq!(batch.len(), norms.len());
        let arena_len = store.len();
        let per_row: Vec<Vec<f64>> = crate::par::maybe_par_map(sequential, batch.len(), |pos| {
            let mut row = ArrivalProxies::new();
            row.fill(store, metric, &batch[pos].point, norms[pos]);
            row.vals
        });
        let mut rows = Vec::with_capacity(arena_len * batch.len());
        for row in per_row {
            debug_assert_eq!(row.len(), arena_len);
            rows.extend_from_slice(&row);
        }
        BatchProxies { rows, arena_len }
    }

    /// The proxy distance from batch element `pos` to arena row `id`.
    #[inline]
    pub fn proxy(&self, pos: usize, id: PointId) -> f64 {
        self.rows[pos * self.arena_len + id.index()]
    }
}

/// One candidate set `S_µ` with threshold `µ` and capacity `cap`.
#[derive(Debug, Clone)]
pub struct Candidate {
    mu: f64,
    /// `proxy_from_dist(mu)`, precomputed once.
    mu_proxy: f64,
    capacity: usize,
    metric: Metric,
    members: Vec<PointId>,
}

impl Candidate {
    /// Creates an empty candidate.
    pub fn new(mu: f64, capacity: usize, metric: Metric) -> Self {
        Candidate {
            mu,
            mu_proxy: metric.proxy_from_dist(mu),
            capacity,
            metric,
            members: Vec::with_capacity(capacity),
        }
    }

    /// The guess `µ` this candidate is maintained for.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Maximum number of elements the candidate may hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of elements.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the candidate holds no elements.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Whether the candidate reached its capacity.
    pub fn is_full(&self) -> bool {
        self.members.len() >= self.capacity
    }

    /// The kept arena ids, in insertion order.
    pub fn members(&self) -> &[PointId] {
        &self.members
    }

    /// Materializes the kept elements from the arena, in insertion order.
    pub fn elements(&self, store: &PointStore) -> Vec<Element> {
        self.members.iter().map(|&id| store.element(id)).collect()
    }

    /// Minimum *proxy* distance from `point` to the candidate
    /// (`+∞` when empty), with early exit once below the threshold proxy.
    #[inline]
    fn proxy_distance_to(&self, store: &PointStore, point: &[f64], norm_sq: f64) -> f64 {
        let mut best = f64::INFINITY;
        for &id in &self.members {
            let p = self
                .metric
                .proxy_with_norms(point, store.row(id), norm_sq, store.norm_sq(id));
            if p < best {
                best = p;
                // Early exit: once below the threshold the element will be
                // rejected anyway; saves ~half the distance evaluations in
                // the hot path without changing behavior.
                if best < self.mu_proxy {
                    break;
                }
            }
        }
        best
    }

    /// Distance from `point` to the candidate (`+∞` when empty).
    ///
    /// May return any value `< µ` early once rejection is certain (same
    /// contract as the scan it replaces: exact above the threshold).
    #[inline]
    pub fn distance_to(&self, store: &PointStore, point: &[f64]) -> f64 {
        let norm_sq = if self.metric.uses_norms() {
            kernel::norm_sq(point)
        } else {
            0.0
        };
        self.metric
            .dist_from_proxy(self.proxy_distance_to(store, point, norm_sq))
    }

    /// The acceptance test of Algorithm 1 line 5 — `!full ∧ d(point, S_µ) ≥ µ`
    /// — entirely in proxy space with bounded (partial-sum) row scans.
    /// Read-only: safe to evaluate for many candidates in parallel against
    /// the same arena.
    #[inline]
    pub fn accepts(&self, store: &PointStore, point: &[f64], norm_sq: f64) -> bool {
        !self.is_full()
            && self.members.iter().all(|&id| {
                self.metric.proxy_at_least(
                    point,
                    store.row(id),
                    norm_sq,
                    store.norm_sq(id),
                    self.mu_proxy,
                )
            })
    }

    /// [`Candidate::accepts`] through a shared per-arrival proxy cache: the
    /// distance to each arena row is computed at most once per arrival no
    /// matter how many candidates test it, and each threshold test may be
    /// decided by the `f32` pre-filter when it is armed. Decisions are
    /// bit-identical to the uncached test (see [`ArrivalProxies`]). The
    /// cache must have been prepared for this arrival with
    /// [`ArrivalProxies::begin_arrival`].
    #[inline]
    pub fn accepts_cached(
        &self,
        store: &PointStore,
        cache: &mut ArrivalProxies,
        point: &[f64],
    ) -> bool {
        !self.is_full()
            && self
                .members
                .iter()
                .all(|&id| cache.at_least(store, self.metric, point, id, self.mu_proxy))
    }

    /// Records an already-interned accepted point (see
    /// [`Candidate::accepts`]; the caller interns into the arena once and
    /// pushes the id into every accepting candidate).
    #[inline]
    pub fn push(&mut self, id: PointId) {
        debug_assert!(!self.is_full());
        self.members.push(id);
    }

    /// Algorithm 1, lines 5–6 for a *single* candidate owning its arena:
    /// interns and keeps `element` iff it is not full and
    /// `d(element, S_µ) ≥ µ`. Returns whether it was kept.
    ///
    /// Multi-candidate algorithms share one arena instead: they call
    /// [`Candidate::accepts`] on every candidate, intern once, then
    /// [`Candidate::push`] the id into each acceptor.
    #[inline]
    pub fn try_insert(&mut self, store: &mut PointStore, element: &Element) -> bool {
        let norm_sq = if self.metric.uses_norms() {
            kernel::norm_sq(&element.point)
        } else {
            0.0
        };
        if self.accepts(store, &element.point, norm_sq) {
            let id = store.push_element(element);
            self.members.push(id);
            true
        } else {
            false
        }
    }

    /// `div(S_µ)` over the kept elements (`+∞` for fewer than two).
    pub fn diversity(&self, store: &PointStore) -> f64 {
        let mut best = f64::INFINITY;
        for (i, &a) in self.members.iter().enumerate() {
            for &b in &self.members[i + 1..] {
                let p = self.metric.proxy_with_norms(
                    store.row(a),
                    store.row(b),
                    store.norm_sq(a),
                    store.norm_sq(b),
                );
                if p < best {
                    best = p;
                }
            }
        }
        self.metric.dist_from_proxy(best)
    }

    /// Consumes the candidate, returning its member ids.
    pub fn into_members(self) -> Vec<PointId> {
        self.members
    }

    /// Replaces the member list wholesale — the snapshot-restore path.
    /// The caller must have validated the ids (they index the shared arena)
    /// and the count (`≤ capacity`); see `crate::persist`.
    pub(crate) fn restore_members(&mut self, members: Vec<PointId>) {
        debug_assert!(members.len() <= self.capacity);
        self.members = members;
    }

    /// Simulates inserting a whole `batch` (in order) into this candidate
    /// and returns the batch positions it would accept, **without mutating
    /// anything** — the core of the parallel guess-ladder insert.
    ///
    /// Every candidate's decisions depend only on its own state and the
    /// batch prefix, so probing all candidates concurrently and then
    /// committing ([`PointStore::push_element`] + [`Candidate::push`])
    /// serially reproduces element-by-element insertion exactly.
    ///
    /// `norms` must hold the squared L2 norm of each batch element (ignored
    /// unless the metric uses norms; pass zeros otherwise) and
    /// `restrict_group` filters the batch to one group (for the
    /// group-specific candidates of SFDM1/SFDM2).
    pub fn probe_batch(
        &self,
        store: &PointStore,
        batch: &[Element],
        norms: &[f64],
        restrict_group: Option<usize>,
    ) -> Vec<u32> {
        debug_assert_eq!(batch.len(), norms.len());
        let mut accepted: Vec<u32> = Vec::new();
        let mut room = self.capacity.saturating_sub(self.members.len());
        for (pos, element) in batch.iter().enumerate() {
            if room == 0 {
                break;
            }
            if let Some(g) = restrict_group {
                if element.group != g {
                    continue;
                }
            }
            let far_from_members = self.members.iter().all(|&id| {
                self.metric.proxy_at_least(
                    &element.point,
                    store.row(id),
                    norms[pos],
                    store.norm_sq(id),
                    self.mu_proxy,
                )
            });
            // Also check against batch elements this candidate already
            // (virtually) accepted.
            let far_from_virtual = far_from_members
                && accepted.iter().all(|&prev| {
                    self.metric.proxy_at_least(
                        &element.point,
                        &batch[prev as usize].point,
                        norms[pos],
                        norms[prev as usize],
                        self.mu_proxy,
                    )
                });
            if far_from_virtual {
                accepted.push(pos as u32);
                room -= 1;
            }
        }
        accepted
    }

    /// [`Candidate::probe_batch`] through a shared [`BatchProxies`] table:
    /// member tests are table lookups (each `(element, arena row)` pair was
    /// evaluated exactly once, however many lanes test it); only the
    /// batch-internal "virtual member" tests still run the kernel, and
    /// those pairs are unique to this lane. Decisions are bit-identical to
    /// the uncached probe (see [`BatchProxies`]).
    pub fn probe_batch_cached(
        &self,
        batch: &[Element],
        norms: &[f64],
        restrict_group: Option<usize>,
        proxies: &BatchProxies,
    ) -> Vec<u32> {
        debug_assert_eq!(batch.len(), norms.len());
        let mut accepted: Vec<u32> = Vec::new();
        let mut room = self.capacity.saturating_sub(self.members.len());
        for (pos, element) in batch.iter().enumerate() {
            if room == 0 {
                break;
            }
            if let Some(g) = restrict_group {
                if element.group != g {
                    continue;
                }
            }
            let far_from_members = self
                .members
                .iter()
                .all(|&id| proxies.proxy(pos, id) >= self.mu_proxy);
            let far_from_virtual = far_from_members
                && accepted.iter().all(|&prev| {
                    self.metric.proxy_at_least(
                        &element.point,
                        &batch[prev as usize].point,
                        norms[pos],
                        norms[prev as usize],
                        self.mu_proxy,
                    )
                });
            if far_from_virtual {
                accepted.push(pos as u32);
                room -= 1;
            }
        }
        accepted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn elem(id: usize, x: f64) -> Element {
        Element::new(id, vec![x], 0)
    }

    #[test]
    fn accepts_far_rejects_near() {
        let mut store = PointStore::new(1);
        let mut c = Candidate::new(1.0, 5, Metric::Euclidean);
        assert!(c.try_insert(&mut store, &elem(0, 0.0)));
        assert!(
            !c.try_insert(&mut store, &elem(1, 0.5)),
            "0.5 < mu rejected"
        );
        assert!(
            c.try_insert(&mut store, &elem(2, 1.0)),
            "exactly mu accepted"
        );
        assert!(c.try_insert(&mut store, &elem(3, 2.5)));
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn capacity_is_enforced() {
        let mut store = PointStore::new(1);
        let mut c = Candidate::new(1.0, 2, Metric::Euclidean);
        assert!(c.try_insert(&mut store, &elem(0, 0.0)));
        assert!(c.try_insert(&mut store, &elem(1, 10.0)));
        assert!(c.is_full());
        assert!(
            !c.try_insert(&mut store, &elem(2, 20.0)),
            "full candidate rejects everything"
        );
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn diversity_invariant_holds() {
        let mut store = PointStore::new(1);
        let mut c = Candidate::new(2.0, 10, Metric::Euclidean);
        for (i, x) in [0.0, 1.0, 2.0, 3.5, 4.0, 9.0, 10.5].iter().enumerate() {
            c.try_insert(&mut store, &elem(i, *x));
        }
        assert!(c.diversity(&store) >= c.mu(), "div(S_mu) >= mu must hold");
    }

    #[test]
    fn rejected_elements_are_close_when_not_full() {
        let mut store = PointStore::new(1);
        let mut c = Candidate::new(1.0, 10, Metric::Euclidean);
        let stream = [0.0, 0.4, 0.9, 3.0, 3.3, 7.0];
        let mut rejected = Vec::new();
        for (i, x) in stream.iter().enumerate() {
            let e = elem(i, *x);
            if !c.try_insert(&mut store, &e) {
                rejected.push(e);
            }
        }
        assert!(!c.is_full());
        for e in rejected {
            assert!(
                c.distance_to(&store, &e.point) < 1.0,
                "rejected element must be within mu"
            );
        }
    }

    #[test]
    fn distance_to_empty_is_infinite() {
        let store = PointStore::new(1);
        let c = Candidate::new(1.0, 3, Metric::Euclidean);
        assert_eq!(c.distance_to(&store, &[42.0]), f64::INFINITY);
    }

    #[test]
    fn diversity_of_small_candidates_is_infinite() {
        let mut store = PointStore::new(1);
        let mut c = Candidate::new(1.0, 3, Metric::Euclidean);
        assert_eq!(c.diversity(&store), f64::INFINITY);
        c.try_insert(&mut store, &elem(0, 0.0));
        assert_eq!(c.diversity(&store), f64::INFINITY);
    }

    #[test]
    fn into_members_preserves_order() {
        let mut store = PointStore::new(1);
        let mut c = Candidate::new(1.0, 3, Metric::Euclidean);
        c.try_insert(&mut store, &elem(5, 0.0));
        c.try_insert(&mut store, &elem(9, 5.0));
        let ids: Vec<usize> = c
            .into_members()
            .iter()
            .map(|&id| store.external_id(id))
            .collect();
        assert_eq!(ids, vec![5, 9]);
    }

    #[test]
    fn manhattan_candidate() {
        let mut store = PointStore::new(2);
        let mut c = Candidate::new(2.0, 4, Metric::Manhattan);
        assert!(c.try_insert(&mut store, &Element::new(0, vec![0.0, 0.0], 0)));
        // Manhattan distance 1.5 < 2 → reject; Euclidean would be ~1.06 too.
        assert!(!c.try_insert(&mut store, &Element::new(1, vec![0.75, 0.75], 0)));
        // Manhattan distance 2.0 → accept.
        assert!(c.try_insert(&mut store, &Element::new(2, vec![1.0, 1.0], 0)));
    }

    #[test]
    fn angular_candidate_uses_cached_norms() {
        let mut store = PointStore::new(2);
        let mut c = Candidate::new(0.5, 4, Metric::Angular);
        assert!(c.try_insert(&mut store, &Element::new(0, vec![1.0, 0.0], 0)));
        // Same direction, different magnitude: angle 0 < 0.5 → reject.
        assert!(!c.try_insert(&mut store, &Element::new(1, vec![5.0, 0.0], 0)));
        // Right angle: π/2 ≥ 0.5 → accept.
        assert!(c.try_insert(&mut store, &Element::new(2, vec![0.0, 3.0], 0)));
        assert!((c.diversity(&store) - std::f64::consts::FRAC_PI_2).abs() < 1e-9);
    }

    #[test]
    fn shared_arena_accept_then_push() {
        // The multi-candidate protocol: probe with `accepts`, intern once,
        // push into every acceptor.
        let mut store = PointStore::new(1);
        let mut c1 = Candidate::new(1.0, 4, Metric::Euclidean);
        let mut c2 = Candidate::new(5.0, 4, Metric::Euclidean);
        for (i, x) in [0.0, 2.0, 7.0].iter().enumerate() {
            let e = elem(i, *x);
            let nsq = kernel::norm_sq(&e.point);
            let a1 = c1.accepts(&store, &e.point, nsq);
            let a2 = c2.accepts(&store, &e.point, nsq);
            if a1 || a2 {
                let id = store.push_element(&e);
                if a1 {
                    c1.push(id);
                }
                if a2 {
                    c2.push(id);
                }
            }
        }
        assert_eq!(c1.len(), 3); // 0, 2, 7 all pairwise >= 1 apart
        assert_eq!(c2.len(), 2); // 0 and 7
        assert_eq!(store.len(), 3, "each element interned exactly once");
    }
}
