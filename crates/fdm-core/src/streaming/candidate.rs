//! Bounded greedy candidates `S_µ` — the building block of Algorithm 1.
//!
//! A candidate for guess `µ` accepts an arriving element iff it is not full
//! and the element is at distance ≥ µ from everything already kept
//! (Algorithm 1, lines 4–6). Two invariants follow directly and are relied
//! on by every proof in the paper:
//!
//! * `div(S_µ) ≥ µ` at all times;
//! * if the candidate is not full after the stream, every stream element is
//!   within `< µ` of it (it was rejected for proximity, not capacity).

use crate::metric::Metric;
use crate::point::Element;

/// One candidate set `S_µ` with threshold `µ` and capacity `cap`.
#[derive(Debug, Clone)]
pub struct Candidate {
    mu: f64,
    capacity: usize,
    metric: Metric,
    elements: Vec<Element>,
}

impl Candidate {
    /// Creates an empty candidate.
    pub fn new(mu: f64, capacity: usize, metric: Metric) -> Self {
        Candidate { mu, capacity, metric, elements: Vec::with_capacity(capacity) }
    }

    /// The guess `µ` this candidate is maintained for.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Maximum number of elements the candidate may hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of elements.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// Whether the candidate holds no elements.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// Whether the candidate reached its capacity.
    pub fn is_full(&self) -> bool {
        self.elements.len() >= self.capacity
    }

    /// The kept elements, in insertion order.
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Distance from `point` to the candidate (`+∞` when empty).
    #[inline]
    pub fn distance_to(&self, point: &[f64]) -> f64 {
        let mut best = f64::INFINITY;
        for e in &self.elements {
            let d = self.metric.dist(point, &e.point);
            if d < best {
                best = d;
                // Early exit: once below the threshold the element will be
                // rejected anyway; saves ~half the distance evaluations in
                // the hot path without changing behavior.
                if best < self.mu {
                    break;
                }
            }
        }
        best
    }

    /// Algorithm 1, lines 5–6: inserts `element` iff the candidate is not
    /// full and `d(element, S_µ) ≥ µ`. Returns whether it was kept.
    #[inline]
    pub fn try_insert(&mut self, element: &Element) -> bool {
        if self.is_full() {
            return false;
        }
        if self.distance_to(&element.point) >= self.mu {
            self.elements.push(element.clone());
            true
        } else {
            false
        }
    }

    /// `div(S_µ)` over the kept elements (`+∞` for fewer than two).
    pub fn diversity(&self) -> f64 {
        let mut best = f64::INFINITY;
        for (i, a) in self.elements.iter().enumerate() {
            for b in &self.elements[i + 1..] {
                let d = self.metric.dist(&a.point, &b.point);
                if d < best {
                    best = d;
                }
            }
        }
        best
    }

    /// Consumes the candidate, returning its elements.
    pub fn into_elements(self) -> Vec<Element> {
        self.elements
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn elem(id: usize, x: f64) -> Element {
        Element::new(id, vec![x], 0)
    }

    #[test]
    fn accepts_far_rejects_near() {
        let mut c = Candidate::new(1.0, 5, Metric::Euclidean);
        assert!(c.try_insert(&elem(0, 0.0)));
        assert!(!c.try_insert(&elem(1, 0.5)), "0.5 < mu rejected");
        assert!(c.try_insert(&elem(2, 1.0)), "exactly mu accepted");
        assert!(c.try_insert(&elem(3, 2.5)));
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn capacity_is_enforced() {
        let mut c = Candidate::new(1.0, 2, Metric::Euclidean);
        assert!(c.try_insert(&elem(0, 0.0)));
        assert!(c.try_insert(&elem(1, 10.0)));
        assert!(c.is_full());
        assert!(!c.try_insert(&elem(2, 20.0)), "full candidate rejects everything");
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn diversity_invariant_holds() {
        let mut c = Candidate::new(2.0, 10, Metric::Euclidean);
        for (i, x) in [0.0, 1.0, 2.0, 3.5, 4.0, 9.0, 10.5].iter().enumerate() {
            c.try_insert(&elem(i, *x));
        }
        assert!(c.diversity() >= c.mu(), "div(S_mu) >= mu must hold");
    }

    #[test]
    fn rejected_elements_are_close_when_not_full() {
        let mut c = Candidate::new(1.0, 10, Metric::Euclidean);
        let stream = [0.0, 0.4, 0.9, 3.0, 3.3, 7.0];
        let mut rejected = Vec::new();
        for (i, x) in stream.iter().enumerate() {
            let e = elem(i, *x);
            if !c.try_insert(&e) {
                rejected.push(e);
            }
        }
        assert!(!c.is_full());
        for e in rejected {
            assert!(c.distance_to(&e.point) < 1.0, "rejected element must be within mu");
        }
    }

    #[test]
    fn distance_to_empty_is_infinite() {
        let c = Candidate::new(1.0, 3, Metric::Euclidean);
        assert_eq!(c.distance_to(&[42.0]), f64::INFINITY);
    }

    #[test]
    fn diversity_of_small_candidates_is_infinite() {
        let mut c = Candidate::new(1.0, 3, Metric::Euclidean);
        assert_eq!(c.diversity(), f64::INFINITY);
        c.try_insert(&elem(0, 0.0));
        assert_eq!(c.diversity(), f64::INFINITY);
    }

    #[test]
    fn into_elements_preserves_order() {
        let mut c = Candidate::new(1.0, 3, Metric::Euclidean);
        c.try_insert(&elem(5, 0.0));
        c.try_insert(&elem(9, 5.0));
        let ids: Vec<usize> = c.into_elements().iter().map(|e| e.id).collect();
        assert_eq!(ids, vec![5, 9]);
    }

    #[test]
    fn manhattan_candidate() {
        let mut c = Candidate::new(2.0, 4, Metric::Manhattan);
        assert!(c.try_insert(&Element::new(0, vec![0.0, 0.0], 0)));
        // Manhattan distance 1.5 < 2 → reject; Euclidean would be ~1.06 too.
        assert!(!c.try_insert(&Element::new(1, vec![0.75, 0.75], 0)));
        // Manhattan distance 2.0 → accept.
        assert!(c.try_insert(&Element::new(2, vec![1.0, 1.0], 0)));
    }
}
