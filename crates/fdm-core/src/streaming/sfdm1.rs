//! SFDM1 — Algorithm 2: streaming FDM for `m = 2` groups,
//! `(1−ε)/4`-approximate (Theorem 2).
//!
//! **Stream processing**: per guess `µ` keep one group-blind candidate of
//! capacity `k = k_1 + k_2` plus one group-specific candidate of capacity
//! `k_i` per group (elements filtered by group).
//!
//! **Post-processing**: restrict to `U' = {µ : |S_µ| = k ∧ |S_µ,i| = k_i}`.
//! Each group-blind candidate either already satisfies the constraint or has
//! exactly one under-filled group; balance it by inserting the pool elements
//! furthest from the under-filled side, then deleting the over-filled
//! elements closest to it ([`crate::balance`]). Lemma 2 shows the balanced
//! candidate keeps `div ≥ µ/2`; Lemma 1 places a `µ' ≥ (1−ε)/2 · OPT_f`
//! in `U'`.

use std::collections::HashSet;

use crate::balance::{balance_two_groups, SwapStrategy};
use crate::dataset::DistanceBounds;
use crate::diversity::diversity_of_points;
use crate::error::{FdmError, Result};
use crate::fairness::FairnessConstraint;
use crate::guess::GuessLadder;
use crate::metric::Metric;
use crate::point::Element;
use crate::solution::Solution;
use crate::streaming::candidate::Candidate;

/// Configuration for [`Sfdm1`].
#[derive(Debug, Clone)]
pub struct Sfdm1Config {
    /// Two-group quota vector.
    pub constraint: FairnessConstraint,
    /// Guess-ladder accuracy `ε ∈ (0, 1)`.
    pub epsilon: f64,
    /// Known bounds with `d_min ≤ OPT_f ≤ d_max`.
    pub bounds: DistanceBounds,
    /// The distance metric.
    pub metric: Metric,
}

/// Streaming state of SFDM1.
#[derive(Debug, Clone)]
pub struct Sfdm1 {
    constraint: FairnessConstraint,
    metric: Metric,
    /// Group-blind candidates, one per guess.
    blind: Vec<Candidate>,
    /// `specific[i][j]` = candidate for group `i`, guess `j`, capacity `k_i`.
    specific: [Vec<Candidate>; 2],
    strategy: SwapStrategy,
    processed: usize,
}

impl Sfdm1 {
    /// Initializes the candidates for every guess in the ladder.
    pub fn new(config: Sfdm1Config) -> Result<Self> {
        Self::with_strategy(config, SwapStrategy::Greedy)
    }

    /// Like [`Sfdm1::new`] with an explicit balancing strategy (the
    /// `Arbitrary` variant exists for the ablation bench).
    pub fn with_strategy(config: Sfdm1Config, strategy: SwapStrategy) -> Result<Self> {
        if config.constraint.num_groups() != 2 {
            return Err(FdmError::InvalidGroup {
                group: config.constraint.num_groups(),
                num_groups: 2,
            });
        }
        config.metric.validate()?;
        let ladder = GuessLadder::new(config.bounds, config.epsilon)?;
        let k = config.constraint.total();
        let blind = ladder
            .values()
            .iter()
            .map(|&mu| Candidate::new(mu, k, config.metric))
            .collect();
        let specific = [0, 1].map(|g| {
            ladder
                .values()
                .iter()
                .map(|&mu| Candidate::new(mu, config.constraint.quota(g), config.metric))
                .collect()
        });
        Ok(Sfdm1 {
            constraint: config.constraint,
            metric: config.metric,
            blind,
            specific,
            strategy,
            processed: 0,
        })
    }

    /// Processes one stream element (Algorithm 2, lines 3–8).
    pub fn insert(&mut self, element: &Element) {
        debug_assert!(element.group < 2, "SFDM1 requires group labels in {{0, 1}}");
        self.processed += 1;
        for candidate in &mut self.blind {
            candidate.try_insert(element);
        }
        for candidate in &mut self.specific[element.group] {
            candidate.try_insert(element);
        }
    }

    /// Number of elements seen so far.
    pub fn processed(&self) -> usize {
        self.processed
    }

    /// Distinct retained element count — the paper's space metric.
    pub fn stored_elements(&self) -> usize {
        let mut ids = HashSet::new();
        for c in self.blind.iter().chain(self.specific.iter().flatten()) {
            for e in c.elements() {
                ids.insert(e.id);
            }
        }
        ids.len()
    }

    /// Post-processing (Algorithm 2, lines 9–18): balance every candidate in
    /// `U'` and return the most diverse fair result.
    pub fn finalize(&self) -> Result<Solution> {
        let k = self.constraint.total();
        let mut best: Option<(f64, Vec<Element>)> = None;
        for (j, blind) in self.blind.iter().enumerate() {
            // U' membership: blind full and both group candidates full.
            if blind.len() < k
                || self.specific[0][j].len() < self.constraint.quota(0)
                || self.specific[1][j].len() < self.constraint.quota(1)
            {
                continue;
            }
            let mut solution = blind.elements().to_vec();
            let pools = [
                self.specific[0][j].elements().to_vec(),
                self.specific[1][j].elements().to_vec(),
            ];
            if !balance_two_groups(
                &mut solution,
                &pools,
                &self.constraint,
                self.metric,
                self.strategy,
            ) {
                continue;
            }
            let points: Vec<&[f64]> = solution.iter().map(|e| &e.point[..]).collect();
            let div = diversity_of_points(&points, self.metric);
            if best.as_ref().is_none_or(|(b, _)| div > *b) {
                best = Some((div, solution));
            }
        }
        match best {
            Some((_, elements)) => Ok(Solution::from_elements(elements, self.metric)),
            None => Err(FdmError::NoFeasibleCandidate),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::exact_fair_optimum;
    use crate::dataset::Dataset;
    use rand::prelude::*;

    fn run(dataset: &Dataset, constraint: FairnessConstraint, eps: f64) -> Result<Solution> {
        let bounds = dataset.exact_distance_bounds().unwrap();
        let mut alg = Sfdm1::new(Sfdm1Config {
            constraint,
            epsilon: eps,
            bounds,
            metric: dataset.metric(),
        })?;
        for e in dataset.iter() {
            alg.insert(&e);
        }
        alg.finalize()
    }

    fn random_two_group_dataset(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![rng.random::<f64>() * 10.0, rng.random::<f64>() * 10.0])
            .collect();
        let mut groups: Vec<usize> = (0..n).map(|_| rng.random_range(0..2)).collect();
        groups[0] = 0;
        groups[1] = 0;
        groups[2] = 1;
        groups[3] = 1;
        Dataset::from_rows(rows, groups, Metric::Euclidean).unwrap()
    }

    #[test]
    fn rejects_non_binary_constraint() {
        let c = FairnessConstraint::new(vec![1, 1, 1]).unwrap();
        let cfg = Sfdm1Config {
            constraint: c,
            epsilon: 0.1,
            bounds: DistanceBounds::new(1.0, 10.0).unwrap(),
            metric: Metric::Euclidean,
        };
        assert!(Sfdm1::new(cfg).is_err());
    }

    #[test]
    fn output_is_fair() {
        let d = random_two_group_dataset(200, 3);
        let c = FairnessConstraint::new(vec![4, 4]).unwrap();
        let sol = run(&d, c.clone(), 0.1).unwrap();
        assert_eq!(sol.len(), 8);
        assert!(c.is_satisfied_by(&sol.group_counts(2)));
    }

    #[test]
    fn theorem2_ratio_on_random_instances() {
        for trial in 0..8 {
            let d = random_two_group_dataset(14, 40 + trial);
            let c = FairnessConstraint::new(vec![2, 2]).unwrap();
            let (opt, _) = exact_fair_optimum(&d, &c);
            let eps = 0.1;
            let sol = run(&d, c, eps).unwrap();
            let guarantee = (1.0 - eps) / 4.0 * opt;
            assert!(
                sol.diversity >= guarantee - 1e-9,
                "trial {trial}: {} < {guarantee}",
                sol.diversity
            );
        }
    }

    #[test]
    fn skewed_quotas_work() {
        let d = random_two_group_dataset(300, 9);
        let c = FairnessConstraint::new(vec![7, 3]).unwrap();
        let sol = run(&d, c.clone(), 0.1).unwrap();
        assert!(c.is_satisfied_by(&sol.group_counts(2)));
    }

    #[test]
    fn unbalanced_group_sizes_work() {
        // 90/10 population split, equal quotas.
        let mut rng = StdRng::seed_from_u64(77);
        let n = 400;
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![rng.random::<f64>() * 10.0, rng.random::<f64>() * 10.0])
            .collect();
        let groups: Vec<usize> = (0..n).map(|i| usize::from(i % 10 == 0)).collect();
        let d = Dataset::from_rows(rows, groups, Metric::Euclidean).unwrap();
        let c = FairnessConstraint::new(vec![5, 5]).unwrap();
        let sol = run(&d, c.clone(), 0.1).unwrap();
        assert!(c.is_satisfied_by(&sol.group_counts(2)));
        assert!(sol.diversity > 0.0);
    }

    #[test]
    fn space_independent_of_stream_length() {
        let c = FairnessConstraint::new(vec![3, 3]).unwrap();
        let bounds = DistanceBounds::new(0.05, 15.0).unwrap();
        let mut sizes = Vec::new();
        for n in [200usize, 2000] {
            let d = random_two_group_dataset(n, 5);
            let mut alg = Sfdm1::new(Sfdm1Config {
                constraint: c.clone(),
                epsilon: 0.1,
                bounds,
                metric: Metric::Euclidean,
            })
            .unwrap();
            for e in d.iter() {
                alg.insert(&e);
            }
            sizes.push(alg.stored_elements());
            assert_eq!(alg.processed(), n);
        }
        // 10x the stream must not cost 10x the memory: bounded by the
        // ladder size times (k + k1 + k2) in both cases.
        let cap = GuessLadder::new(bounds, 0.1).unwrap().len() * (6 + 3 + 3);
        assert!(sizes[0] <= cap && sizes[1] <= cap, "sizes {sizes:?} exceed cap {cap}");
    }

    #[test]
    fn infeasible_stream_errors() {
        // All elements in group 0; constraint needs group 1.
        let rows: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64]).collect();
        let d = Dataset::from_rows(rows, vec![0; 50], Metric::Euclidean).unwrap();
        let c = FairnessConstraint::new(vec![2, 2]).unwrap();
        let err = run(&d, c, 0.1).unwrap_err();
        assert_eq!(err, FdmError::NoFeasibleCandidate);
    }

    #[test]
    fn better_than_quarter_in_practice() {
        // The paper reports near-parity with FairSwap; sanity-check that the
        // practical ratio on easy instances is far above the worst case.
        let mut ratios = Vec::new();
        for trial in 0..5 {
            let d = random_two_group_dataset(16, 90 + trial);
            let c = FairnessConstraint::new(vec![2, 2]).unwrap();
            let (opt, _) = exact_fair_optimum(&d, &c);
            let sol = run(&d, c, 0.1).unwrap();
            ratios.push(sol.diversity / opt);
        }
        let avg: f64 = ratios.iter().sum::<f64>() / ratios.len() as f64;
        assert!(avg > 0.5, "average practical ratio {avg} too low: {ratios:?}");
    }
}
