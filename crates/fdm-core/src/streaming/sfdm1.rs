//! SFDM1 — Algorithm 2: streaming FDM for `m = 2` groups,
//! `(1−ε)/4`-approximate (Theorem 2).
//!
//! **Stream processing**: per guess `µ` keep one group-blind candidate of
//! capacity `k = k_1 + k_2` plus one group-specific candidate of capacity
//! `k_i` per group (elements filtered by group).
//!
//! **Post-processing**: restrict to `U' = {µ : |S_µ| = k ∧ |S_µ,i| = k_i}`.
//! Each group-blind candidate either already satisfies the constraint or has
//! exactly one under-filled group; balance it by inserting the pool elements
//! furthest from the under-filled side, then deleting the over-filled
//! elements closest to it ([`crate::balance`]). Lemma 2 shows the balanced
//! candidate keeps `div ≥ µ/2`; Lemma 1 places a `µ' ≥ (1−ε)/2 · OPT_f`
//! in `U'`.
//!
//! Retained elements are interned once into a shared [`PointStore`];
//! candidates hold [`PointId`]s. With the `parallel` feature, batch inserts
//! probe all candidates concurrently and the per-guess balancing of the
//! post-processing runs across the ladder in parallel (identical results
//! either way).

use std::collections::HashSet;

use serde::Serialize as _;

use crate::balance::{balance_two_groups, SwapStrategy};
use crate::dataset::DistanceBounds;
use crate::diversity::diversity_of_ids;
use crate::error::{FdmError, Result};
use crate::fairness::FairnessConstraint;
use crate::guess::GuessLadder;
use crate::kernel;
use crate::metric::Metric;
use crate::par::maybe_par_map;
use crate::persist::{self, Snapshottable};
use crate::point::{Element, PointId, PointStore};
use crate::solution::Solution;
use crate::streaming::candidate::{ArrivalProxies, BatchProxies, Candidate};
use crate::streaming::unconstrained::commit_batch;

/// Configuration for [`Sfdm1`].
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Sfdm1Config {
    /// Two-group quota vector.
    pub constraint: FairnessConstraint,
    /// Guess-ladder accuracy `ε ∈ (0, 1)`.
    pub epsilon: f64,
    /// Known bounds with `d_min ≤ OPT_f ≤ d_max`.
    pub bounds: DistanceBounds,
    /// The distance metric.
    pub metric: Metric,
}

/// Streaming state of SFDM1.
#[derive(Debug, Clone)]
pub struct Sfdm1 {
    constraint: FairnessConstraint,
    metric: Metric,
    epsilon: f64,
    bounds: DistanceBounds,
    store: PointStore,
    /// Group-blind candidates, one per guess.
    blind: Vec<Candidate>,
    /// `specific[i][j]` = candidate for group `i`, guess `j`, capacity `k_i`.
    specific: [Vec<Candidate>; 2],
    strategy: SwapStrategy,
    /// Per-arrival proxy cache shared across all candidates (see
    /// [`ArrivalProxies`]).
    scratch: ArrivalProxies,
    processed: usize,
    sequential: bool,
    store_initialized: bool,
}

impl Sfdm1 {
    /// Initializes the candidates for every guess in the ladder.
    pub fn new(config: Sfdm1Config) -> Result<Self> {
        Self::with_strategy(config, SwapStrategy::Greedy)
    }

    /// Like [`Sfdm1::new`] with an explicit balancing strategy (the
    /// `Arbitrary` variant exists for the ablation bench).
    pub fn with_strategy(config: Sfdm1Config, strategy: SwapStrategy) -> Result<Self> {
        if config.constraint.num_groups() != 2 {
            return Err(FdmError::InvalidGroup {
                group: config.constraint.num_groups(),
                num_groups: 2,
            });
        }
        config.metric.validate()?;
        let ladder = GuessLadder::new(config.bounds, config.epsilon)?;
        let k = config.constraint.total();
        let blind = ladder
            .values()
            .iter()
            .map(|&mu| Candidate::new(mu, k, config.metric))
            .collect();
        let specific = [0, 1].map(|g| {
            ladder
                .values()
                .iter()
                .map(|&mu| Candidate::new(mu, config.constraint.quota(g), config.metric))
                .collect()
        });
        Ok(Sfdm1 {
            constraint: config.constraint,
            metric: config.metric,
            epsilon: config.epsilon,
            bounds: config.bounds,
            store: PointStore::new(1),
            blind,
            specific,
            strategy,
            scratch: ArrivalProxies::new(),
            processed: 0,
            sequential: false,
            store_initialized: false,
        })
    }

    /// Forces single-threaded processing even when built with the
    /// `parallel` feature (identical results; see the module docs).
    pub fn set_sequential(&mut self, sequential: bool) {
        self.sequential = sequential;
    }

    fn ensure_store_dim(&mut self, dim: usize) {
        if !self.store_initialized {
            self.store = PointStore::new(dim.max(1));
            self.store_initialized = true;
        }
    }

    /// Processes one stream element (Algorithm 2, lines 3–8).
    pub fn insert(&mut self, element: &Element) {
        debug_assert!(element.group < 2, "SFDM1 requires group labels in {{0, 1}}");
        self.ensure_store_dim(element.dim());
        self.processed += 1;
        // One shared proxy cache per arrival: candidates of neighboring
        // guesses hold largely the same members, so each arena row is
        // evaluated once however many candidates test it. (The freshly
        // interned id never needs a cache slot — it is only pushed into
        // candidates that already made their decision this arrival.)
        // Syncing the f32 mirror first lets the cache decide most
        // threshold tests in f32.
        if kernel::prefilter_enabled(self.metric) {
            self.store.sync_f32_mirror();
        }
        self.scratch
            .begin_arrival(&self.store, self.metric, &element.point);
        let mut interned: Option<PointId> = None;
        let store = &mut self.store;
        let scratch = &mut self.scratch;
        for candidate in self
            .blind
            .iter_mut()
            .chain(self.specific[element.group].iter_mut())
        {
            if candidate.accepts_cached(store, scratch, &element.point) {
                let id = *interned.get_or_insert_with(|| store.push_element(element));
                candidate.push(id);
            }
        }
        scratch.flush_prefilter_counters(store);
    }

    /// Processes a batch of stream elements; equivalent to element-by-element
    /// [`Sfdm1::insert`] in batch order, with the independent candidates
    /// probed concurrently under the `parallel` feature.
    pub fn insert_batch(&mut self, batch: &[Element]) {
        if batch.is_empty() {
            return;
        }
        // Candidate-major probing only pays when the lanes actually run
        // concurrently; single-threaded, the cached element path is faster
        // and produces identical results.
        if self.sequential || !crate::par::parallel_available() {
            for element in batch {
                self.insert(element);
            }
            return;
        }
        debug_assert!(batch.iter().all(|e| e.group < 2));
        self.ensure_store_dim(batch[0].dim());
        self.processed += batch.len();
        let norms: Vec<f64> = if self.metric.uses_norms() {
            batch.iter().map(|e| kernel::norm_sq(&e.point)).collect()
        } else {
            vec![0.0; batch.len()]
        };
        // One kernel evaluation per (batch element, arena row) pair, shared
        // read-only by every lane below (see `BatchProxies`).
        let proxies =
            BatchProxies::compute(self.sequential, &self.store, self.metric, batch, &norms);
        // Lane layout: [blind..., specific[0]..., specific[1]...].
        let ladder = self.blind.len();
        let accepted: Vec<Vec<u32>> = maybe_par_map(self.sequential, ladder * 3, |lane| {
            let (candidate, restrict) = if lane < ladder {
                (&self.blind[lane], None)
            } else if lane < 2 * ladder {
                (&self.specific[0][lane - ladder], Some(0))
            } else {
                (&self.specific[1][lane - 2 * ladder], Some(1))
            };
            candidate.probe_batch_cached(batch, &norms, restrict, &proxies)
        });
        let [s0, s1] = &mut self.specific;
        let mut lanes: Vec<&mut Candidate> = self
            .blind
            .iter_mut()
            .chain(s0.iter_mut())
            .chain(s1.iter_mut())
            .collect();
        commit_batch(&mut self.store, batch, &mut lanes, &accepted);
    }

    /// Number of elements seen so far.
    pub fn processed(&self) -> usize {
        self.processed
    }

    /// Distinct retained element count — the paper's space metric.
    pub fn stored_elements(&self) -> usize {
        let ids: HashSet<usize> = self
            .store
            .ids()
            .map(|id| self.store.external_id(id))
            .collect();
        ids.len()
    }

    /// The shared arena of retained elements.
    pub fn store(&self) -> &PointStore {
        &self.store
    }

    /// The configuration this instance was built with.
    pub fn config(&self) -> Sfdm1Config {
        Sfdm1Config {
            constraint: self.constraint.clone(),
            epsilon: self.epsilon,
            bounds: self.bounds,
            metric: self.metric,
        }
    }

    /// Post-processing (Algorithm 2, lines 9–18): balance every candidate in
    /// `U'` and return the most diverse fair result. The per-guess balancing
    /// runs across the ladder in parallel under the `parallel` feature.
    pub fn finalize(&self) -> Result<Solution> {
        let k = self.constraint.total();
        let results: Vec<Option<(f64, Vec<PointId>)>> =
            maybe_par_map(self.sequential, self.blind.len(), |j| {
                let blind = &self.blind[j];
                // U' membership: blind full and both group candidates full.
                if blind.len() < k
                    || self.specific[0][j].len() < self.constraint.quota(0)
                    || self.specific[1][j].len() < self.constraint.quota(1)
                {
                    return None;
                }
                let mut solution = blind.members().to_vec();
                let pools = [
                    self.specific[0][j].members().to_vec(),
                    self.specific[1][j].members().to_vec(),
                ];
                if !balance_two_groups(
                    &self.store,
                    &mut solution,
                    &pools,
                    &self.constraint,
                    self.metric,
                    self.strategy,
                ) {
                    return None;
                }
                let div = diversity_of_ids(&self.store, &solution, self.metric);
                Some((div, solution))
            });
        // Serial reduction preserves the first-maximum tie-break regardless
        // of how the map above was scheduled.
        let mut best: Option<(f64, &Vec<PointId>)> = None;
        for r in results.iter().flatten() {
            let (div, ids) = r;
            if best.as_ref().is_none_or(|(b, _)| *div > *b) {
                best = Some((*div, ids));
            }
        }
        match best {
            Some((_, ids)) => Ok(Solution::from_ids(&self.store, ids, self.metric)),
            None => Err(FdmError::NoFeasibleCandidate),
        }
    }
}

/// # Persistence
///
/// Same append-mostly layout contract as [`Sfdm2`](crate::streaming::sfdm2::Sfdm2):
/// arena blobs and lane member lists only grow between checkpoints, so
/// delta snapshots ([`SnapshotDelta`](crate::persist::SnapshotDelta))
/// stay proportional to what actually changed, and the v2 binary codec
/// packs the blobs densely. Both formats and `full + delta*` chains
/// restore bit-identically (`tests/persist_codec.rs`).
impl Snapshottable for Sfdm1 {
    fn algorithm_tag() -> String {
        "sfdm1".to_string()
    }

    fn snapshot_params(&self) -> crate::persist::SnapshotParams {
        crate::persist::SnapshotParams {
            algorithm: Self::algorithm_tag(),
            dim: if self.store_initialized {
                self.store.dim()
            } else {
                0
            },
            epsilon: self.epsilon,
            metric: self.metric,
            bounds: self.bounds,
            quotas: self.constraint.quotas().to_vec(),
            k: self.constraint.total(),
            shards: 1,
            window: 0,
        }
    }

    fn snapshot_state(&self) -> serde::Value {
        let mut map = serde::Map::new();
        map.insert("config".to_string(), self.config().to_value());
        map.insert("strategy".to_string(), self.strategy.to_value());
        map.insert("store".to_string(), self.store.to_value());
        map.insert(
            "store_initialized".to_string(),
            serde::Value::Bool(self.store_initialized),
        );
        map.insert(
            "processed".to_string(),
            serde::Serialize::to_value(&self.processed),
        );
        map.insert(
            "blind".to_string(),
            persist::lanes_of(&self.blind).to_value(),
        );
        let specific: Vec<persist::LadderLanes> =
            self.specific.iter().map(|c| persist::lanes_of(c)).collect();
        map.insert("specific".to_string(), specific.to_value());
        serde::Value::Object(map)
    }

    fn capture_cursor(&self) -> serde::Value {
        let mut map = serde::Map::new();
        map.insert("store".to_string(), persist::store_cursor(&self.store));
        map.insert("blind".to_string(), persist::lanes_cursor(&self.blind));
        map.insert(
            "specific".to_string(),
            serde::Value::Array(
                self.specific
                    .iter()
                    .map(|c| persist::lanes_cursor(c))
                    .collect(),
            ),
        );
        serde::Value::Object(map)
    }

    fn state_patch_since(&self, cursor: &serde::Value) -> Option<persist::StatePatch> {
        let store = persist::store_patch_since(&self.store, cursor.get("store")?)?;
        let blind = persist::lanes_patch_since(&self.blind, cursor.get("blind")?)?;
        let specific_cursors = cursor.get("specific")?.as_array()?;
        if specific_cursors.len() != self.specific.len() {
            return None;
        }
        let specific: Vec<persist::StatePatch> = self
            .specific
            .iter()
            .zip(specific_cursors)
            .map(|(lanes, c)| persist::lanes_patch_since(lanes, c))
            .collect::<Option<Vec<_>>>()?;
        // `config` and `strategy` are static for the instance's lifetime → keep.
        Some(persist::StatePatch::Object(vec![
            ("store".to_string(), store),
            (
                "store_initialized".to_string(),
                persist::StatePatch::Replace(serde::Value::Bool(self.store_initialized)),
            ),
            (
                "processed".to_string(),
                persist::StatePatch::Replace(serde::Serialize::to_value(&self.processed)),
            ),
            ("blind".to_string(), blind),
            (
                "specific".to_string(),
                persist::StatePatch::Elements(specific),
            ),
        ]))
    }

    fn restore_state(state: &serde::Value) -> Result<Self> {
        let config: Sfdm1Config = persist::field(state, "config")?;
        let strategy: SwapStrategy = persist::field(state, "strategy")?;
        let mut alg = Self::with_strategy(config, strategy)?;
        let store: PointStore = persist::field(state, "store")?;
        let store_initialized: bool = persist::field(state, "store_initialized")?;
        if !store_initialized && !store.is_empty() {
            return Err(FdmError::CorruptSnapshot {
                detail: "arena holds points but is marked uninitialized".to_string(),
            });
        }
        if let Some(&bad) = store.groups_raw().iter().find(|&&g| g >= 2) {
            return Err(FdmError::CorruptSnapshot {
                detail: format!("group label {bad} out of range for SFDM1's two groups"),
            });
        }
        let blind: persist::LadderLanes = persist::field(state, "blind")?;
        persist::restore_lanes(&mut alg.blind, &blind, store.len(), "blind")?;
        let specific: Vec<persist::LadderLanes> = persist::field(state, "specific")?;
        if specific.len() != 2 {
            return Err(FdmError::CorruptSnapshot {
                detail: format!("expected 2 group ladders, found {}", specific.len()),
            });
        }
        for (g, lanes) in specific.iter().enumerate() {
            persist::restore_lanes(
                &mut alg.specific[g],
                lanes,
                store.len(),
                &format!("group {g}"),
            )?;
        }
        alg.processed = persist::field(state, "processed")?;
        alg.store = store;
        alg.store_initialized = store_initialized;
        Ok(alg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::exact_fair_optimum;
    use crate::dataset::Dataset;
    use rand::prelude::*;

    fn run(dataset: &Dataset, constraint: FairnessConstraint, eps: f64) -> Result<Solution> {
        let bounds = dataset.exact_distance_bounds().unwrap();
        let mut alg = Sfdm1::new(Sfdm1Config {
            constraint,
            epsilon: eps,
            bounds,
            metric: dataset.metric(),
        })?;
        for e in dataset.iter() {
            alg.insert(&e);
        }
        alg.finalize()
    }

    fn random_two_group_dataset(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![rng.random::<f64>() * 10.0, rng.random::<f64>() * 10.0])
            .collect();
        let mut groups: Vec<usize> = (0..n).map(|_| rng.random_range(0..2)).collect();
        groups[0] = 0;
        groups[1] = 0;
        groups[2] = 1;
        groups[3] = 1;
        Dataset::from_rows(rows, groups, Metric::Euclidean).unwrap()
    }

    #[test]
    fn rejects_non_binary_constraint() {
        let c = FairnessConstraint::new(vec![1, 1, 1]).unwrap();
        let cfg = Sfdm1Config {
            constraint: c,
            epsilon: 0.1,
            bounds: DistanceBounds::new(1.0, 10.0).unwrap(),
            metric: Metric::Euclidean,
        };
        assert!(Sfdm1::new(cfg).is_err());
    }

    #[test]
    fn output_is_fair() {
        let d = random_two_group_dataset(200, 3);
        let c = FairnessConstraint::new(vec![4, 4]).unwrap();
        let sol = run(&d, c.clone(), 0.1).unwrap();
        assert_eq!(sol.len(), 8);
        assert!(c.is_satisfied_by(&sol.group_counts(2)));
    }

    #[test]
    fn theorem2_ratio_on_random_instances() {
        for trial in 0..8 {
            let d = random_two_group_dataset(14, 40 + trial);
            let c = FairnessConstraint::new(vec![2, 2]).unwrap();
            let (opt, _) = exact_fair_optimum(&d, &c);
            let eps = 0.1;
            let sol = run(&d, c, eps).unwrap();
            let guarantee = (1.0 - eps) / 4.0 * opt;
            assert!(
                sol.diversity >= guarantee - 1e-9,
                "trial {trial}: {} < {guarantee}",
                sol.diversity
            );
        }
    }

    #[test]
    fn skewed_quotas_work() {
        let d = random_two_group_dataset(300, 9);
        let c = FairnessConstraint::new(vec![7, 3]).unwrap();
        let sol = run(&d, c.clone(), 0.1).unwrap();
        assert!(c.is_satisfied_by(&sol.group_counts(2)));
    }

    #[test]
    fn unbalanced_group_sizes_work() {
        // 90/10 population split, equal quotas.
        let mut rng = StdRng::seed_from_u64(77);
        let n = 400;
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![rng.random::<f64>() * 10.0, rng.random::<f64>() * 10.0])
            .collect();
        let groups: Vec<usize> = (0..n).map(|i| usize::from(i % 10 == 0)).collect();
        let d = Dataset::from_rows(rows, groups, Metric::Euclidean).unwrap();
        let c = FairnessConstraint::new(vec![5, 5]).unwrap();
        let sol = run(&d, c.clone(), 0.1).unwrap();
        assert!(c.is_satisfied_by(&sol.group_counts(2)));
        assert!(sol.diversity > 0.0);
    }

    #[test]
    fn space_independent_of_stream_length() {
        let c = FairnessConstraint::new(vec![3, 3]).unwrap();
        let bounds = DistanceBounds::new(0.05, 15.0).unwrap();
        let mut sizes = Vec::new();
        for n in [200usize, 2000] {
            let d = random_two_group_dataset(n, 5);
            let mut alg = Sfdm1::new(Sfdm1Config {
                constraint: c.clone(),
                epsilon: 0.1,
                bounds,
                metric: Metric::Euclidean,
            })
            .unwrap();
            for e in d.iter() {
                alg.insert(&e);
            }
            sizes.push(alg.stored_elements());
            assert_eq!(alg.processed(), n);
        }
        // 10x the stream must not cost 10x the memory: bounded by the
        // ladder size times (k + k1 + k2) in both cases.
        let cap = GuessLadder::new(bounds, 0.1).unwrap().len() * (6 + 3 + 3);
        assert!(
            sizes[0] <= cap && sizes[1] <= cap,
            "sizes {sizes:?} exceed cap {cap}"
        );
    }

    #[test]
    fn infeasible_stream_errors() {
        // All elements in group 0; constraint needs group 1.
        let rows: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64]).collect();
        let d = Dataset::from_rows(rows, vec![0; 50], Metric::Euclidean).unwrap();
        let c = FairnessConstraint::new(vec![2, 2]).unwrap();
        let err = run(&d, c, 0.1).unwrap_err();
        assert_eq!(err, FdmError::NoFeasibleCandidate);
    }

    #[test]
    fn better_than_quarter_in_practice() {
        // The paper reports near-parity with FairSwap; sanity-check that the
        // practical ratio on easy instances is far above the worst case.
        let mut ratios = Vec::new();
        for trial in 0..5 {
            let d = random_two_group_dataset(16, 90 + trial);
            let c = FairnessConstraint::new(vec![2, 2]).unwrap();
            let (opt, _) = exact_fair_optimum(&d, &c);
            let sol = run(&d, c, 0.1).unwrap();
            ratios.push(sol.diversity / opt);
        }
        let avg: f64 = ratios.iter().sum::<f64>() / ratios.len() as f64;
        assert!(
            avg > 0.5,
            "average practical ratio {avg} too low: {ratios:?}"
        );
    }

    #[test]
    fn batch_insert_matches_element_by_element() {
        let d = random_two_group_dataset(300, 21);
        let c = FairnessConstraint::new(vec![4, 3]).unwrap();
        let bounds = d.exact_distance_bounds().unwrap();
        let cfg = Sfdm1Config {
            constraint: c,
            epsilon: 0.1,
            bounds,
            metric: Metric::Euclidean,
        };
        let mut one_by_one = Sfdm1::new(cfg.clone()).unwrap();
        let mut batched = Sfdm1::new(cfg).unwrap();
        let elements: Vec<Element> = d.iter().collect();
        for e in &elements {
            one_by_one.insert(e);
        }
        for chunk in elements.chunks(53) {
            batched.insert_batch(chunk);
        }
        assert_eq!(one_by_one.stored_elements(), batched.stored_elements());
        let a = one_by_one.finalize().unwrap();
        let b = batched.finalize().unwrap();
        assert_eq!(a.ids(), b.ids());
        assert_eq!(a.diversity, b.diversity);
    }
}
