//! Composable coresets for max–min diversity maximization (substrate from
//! the paper's related work, §II).
//!
//! Indyk et al. (PODS 2014) and Ceccarello et al. (VLDB 2017) attack
//! diversity maximization in distributed/MapReduce settings with
//! **composable coresets**: partition `X` into chunks, run GMM on each
//! chunk to extract `k'` points, and solve the problem offline on the union
//! of the extracts. For max–min dispersion, a GMM extract of size `k` is a
//! 2-coreset: `OPT(coreset) ≥ OPT(X)/2` under unions (each chunk's GMM
//! radius bounds how much optimum mass the extract can lose).
//!
//! This module exists for two reasons: it lets the bench suite compare the
//! paper's one-pass streaming approach against the natural
//! partition-and-merge alternative on the same workloads, and it gives
//! users with sharded data a drop-in two-round pipeline. For the *fair*
//! problem, each chunk extracts GMM points **per group** (size `k` per
//! group), preserving enough of every group for any fair post-processing
//! algorithm — mirroring how SFDM2 keeps per-group candidates.

use crate::dataset::{Dataset, DatasetBuilder};
use crate::error::{FdmError, Result};
use crate::fairness::FairnessConstraint;
use crate::offline::gmm::gmm_on_subset;

/// Builds an unconstrained composable coreset: GMM extracts of size `k`
/// from each chunk, concatenated. Returns dataset row indices.
///
/// `chunks` is any partition of `0..n` (e.g. shards or stream segments);
/// empty chunks are skipped.
pub fn composable_coreset(
    dataset: &Dataset,
    chunks: &[Vec<usize>],
    k: usize,
    seed: u64,
) -> Vec<usize> {
    let mut coreset = Vec::new();
    for chunk in chunks {
        if chunk.is_empty() {
            continue;
        }
        coreset.extend(gmm_on_subset(dataset, chunk, k, seed));
    }
    coreset
}

/// Builds a *fair* composable coreset: per chunk and per group, a GMM
/// extract of size `k = constraint.total()`, concatenated.
///
/// The union contains, for every group, at least `min(|X_i|, k)` spread-out
/// representatives, so any offline fair algorithm run on the coreset can
/// satisfy the constraint whenever the full dataset can.
pub fn fair_composable_coreset(
    dataset: &Dataset,
    chunks: &[Vec<usize>],
    constraint: &FairnessConstraint,
    seed: u64,
) -> Result<Vec<usize>> {
    constraint.check_feasible(dataset.group_sizes())?;
    let k = constraint.total();
    let m = constraint.num_groups();
    let mut coreset = Vec::new();
    for chunk in chunks {
        if chunk.is_empty() {
            continue;
        }
        for g in 0..m {
            let members: Vec<usize> = chunk
                .iter()
                .copied()
                .filter(|&i| dataset.group(i) == g)
                .collect();
            if !members.is_empty() {
                coreset.extend(gmm_on_subset(dataset, &members, k, seed));
            }
        }
    }
    if coreset.is_empty() {
        return Err(FdmError::NotEnoughElements {
            required: k,
            available: 0,
        });
    }
    Ok(coreset)
}

/// Splits `0..n` into `p` contiguous chunks of near-equal size (the
/// MapReduce-style partition used by the coreset papers' experiments).
pub fn contiguous_chunks(n: usize, p: usize) -> Vec<Vec<usize>> {
    let p = p.max(1);
    let base = n / p;
    let extra = n % p;
    let mut chunks = Vec::with_capacity(p);
    let mut start = 0;
    for i in 0..p {
        let len = base + usize::from(i < extra);
        chunks.push((start..start + len).collect());
        start += len;
    }
    chunks
}

/// Splits `0..n` into `p` round-robin chunks (element `i` goes to chunk
/// `i mod p`) — the same dealing rule
/// [`crate::streaming::sharded::ShardedStream`] uses for live streams, so
/// offline coreset pipelines can be compared shard-for-shard against
/// sharded ingestion. Unlike [`contiguous_chunks`], every chunk sees the
/// whole stream's group mix, which keeps per-chunk group extracts balanced
/// on sorted or time-ordered data.
pub fn round_robin_chunks(n: usize, p: usize) -> Vec<Vec<usize>> {
    let p = p.max(1);
    let mut chunks: Vec<Vec<usize>> = (0..p)
        .map(|c| Vec::with_capacity(n.div_ceil(p) + usize::from(c == 0)))
        .collect();
    for i in 0..n {
        chunks[i % p].push(i);
    }
    chunks
}

/// Materializes a coreset (row indices) as a new [`Dataset`] preserving
/// group labels, so offline algorithms can run on it directly. Returns the
/// dataset together with the mapping from new rows to original rows.
///
/// Rows are copied arena-to-arena through a [`DatasetBuilder`] (no per-row
/// `Vec` allocations).
pub fn coreset_dataset(dataset: &Dataset, coreset: &[usize]) -> Result<(Dataset, Vec<usize>)> {
    let mut builder =
        DatasetBuilder::with_capacity(dataset.dim(), dataset.metric(), coreset.len())?;
    let mut mapping = Vec::with_capacity(coreset.len());
    // Deduplicate while preserving order (chunks may share GMM picks only
    // if chunks overlap; contiguous chunks never do, but be safe).
    let mut seen = std::collections::HashSet::new();
    for &i in coreset {
        if seen.insert(i) {
            builder.push_row(dataset.point(i), dataset.group(i))?;
            mapping.push(i);
        }
    }
    let ds = builder.finish()?;
    Ok((ds, mapping))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::exact_unconstrained_optimum;
    use crate::diversity::diversity;
    use crate::metric::Metric;
    use crate::offline::fair_swap::{FairSwap, FairSwapConfig};
    use crate::offline::gmm::gmm;
    use rand::prelude::*;

    fn random_dataset(n: usize, m: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![rng.random::<f64>() * 10.0, rng.random::<f64>() * 10.0])
            .collect();
        let mut groups: Vec<usize> = (0..n).map(|_| rng.random_range(0..m)).collect();
        for g in 0..m {
            groups[g] = g;
        }
        Dataset::from_rows(rows, groups, Metric::Euclidean).unwrap()
    }

    #[test]
    fn contiguous_chunks_partition_exactly() {
        let chunks = contiguous_chunks(10, 3);
        assert_eq!(chunks.len(), 3);
        let flat: Vec<usize> = chunks.iter().flatten().copied().collect();
        assert_eq!(flat, (0..10).collect::<Vec<_>>());
        assert_eq!(chunks[0].len(), 4);
        assert_eq!(chunks[1].len(), 3);
        // Degenerate cases.
        assert_eq!(contiguous_chunks(3, 10).iter().flatten().count(), 3);
        assert_eq!(contiguous_chunks(5, 0).len(), 1);
    }

    #[test]
    fn round_robin_chunks_partition_exactly() {
        let chunks = round_robin_chunks(10, 3);
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0], vec![0, 3, 6, 9]);
        assert_eq!(chunks[1], vec![1, 4, 7]);
        assert_eq!(chunks[2], vec![2, 5, 8]);
        let mut flat: Vec<usize> = chunks.iter().flatten().copied().collect();
        flat.sort_unstable();
        assert_eq!(flat, (0..10).collect::<Vec<_>>());
        // Degenerate cases mirror contiguous_chunks.
        assert_eq!(round_robin_chunks(3, 10).iter().flatten().count(), 3);
        assert_eq!(round_robin_chunks(5, 0).len(), 1);
    }

    #[test]
    fn round_robin_chunks_balance_sorted_group_runs() {
        // Data sorted by group: contiguous chunks isolate the groups
        // (chunk 0 sees only group 0), round-robin chunks mix them — the
        // property that keeps per-chunk fair extracts feasible.
        let groups: Vec<usize> = (0..40).map(|i| usize::from(i >= 20)).collect();
        let contiguous = contiguous_chunks(40, 2);
        let rr = round_robin_chunks(40, 2);
        let mix = |chunk: &[usize]| {
            let ones = chunk.iter().filter(|&&i| groups[i] == 1).count();
            (chunk.len() - ones, ones)
        };
        assert_eq!(mix(&contiguous[0]), (20, 0), "contiguous isolates group 0");
        assert_eq!(mix(&rr[0]), (10, 10), "round-robin mixes both groups");
        assert_eq!(mix(&rr[1]), (10, 10));
    }

    #[test]
    fn coreset_size_is_bounded() {
        let d = random_dataset(200, 1, 1);
        let chunks = contiguous_chunks(d.len(), 4);
        let cs = composable_coreset(&d, &chunks, 5, 0);
        assert!(cs.len() <= 4 * 5);
        assert!(!cs.is_empty());
    }

    #[test]
    fn coreset_preserves_half_the_optimum() {
        // The 2-coreset property: solving on the coreset loses at most a
        // factor ~2 (we check the end-to-end GMM-on-coreset pipeline
        // against OPT/4, the composition of both 2-approximations).
        for trial in 0..5 {
            let d = random_dataset(16, 1, 10 + trial);
            let k = 4;
            let opt = exact_unconstrained_optimum(&d, k);
            let chunks = contiguous_chunks(d.len(), 4);
            let cs = composable_coreset(&d, &chunks, k, trial);
            let (cds, mapping) = coreset_dataset(&d, &cs).unwrap();
            let sol = gmm(&cds, k, 0);
            let original: Vec<usize> = sol.iter().map(|&i| mapping[i]).collect();
            let div = diversity(&d, &original);
            assert!(
                div >= opt / 4.0 - 1e-9,
                "trial {trial}: coreset pipeline {div} < OPT/4 = {}",
                opt / 4.0
            );
        }
    }

    #[test]
    fn fair_coreset_keeps_every_group() {
        let d = random_dataset(300, 4, 3);
        let c = FairnessConstraint::equal_representation(8, 4).unwrap();
        let chunks = contiguous_chunks(d.len(), 5);
        let cs = fair_composable_coreset(&d, &chunks, &c, 0).unwrap();
        let (cds, _) = coreset_dataset(&d, &cs).unwrap();
        assert_eq!(cds.num_groups(), 4);
        for (g, &size) in cds.group_sizes().iter().enumerate() {
            assert!(size >= c.quota(g), "group {g} underrepresented in coreset");
        }
    }

    #[test]
    fn fair_pipeline_on_coreset_is_fair() {
        let d = random_dataset(400, 2, 5);
        let c = FairnessConstraint::new(vec![3, 3]).unwrap();
        let chunks = contiguous_chunks(d.len(), 8);
        let cs = fair_composable_coreset(&d, &chunks, &c, 0).unwrap();
        let (cds, _) = coreset_dataset(&d, &cs).unwrap();
        let sol = FairSwap::new(FairSwapConfig {
            constraint: c.clone(),
            seed: 0,
            strategy: Default::default(),
        })
        .unwrap()
        .run(&cds)
        .unwrap();
        assert!(c.is_satisfied_by(&sol.group_counts(2)));
        assert!(sol.diversity > 0.0);
    }

    #[test]
    fn fair_coreset_rejects_infeasible() {
        let d = random_dataset(50, 2, 7);
        let c = FairnessConstraint::new(vec![100, 2]).unwrap();
        let chunks = contiguous_chunks(d.len(), 2);
        assert!(fair_composable_coreset(&d, &chunks, &c, 0).is_err());
    }

    #[test]
    fn coreset_dataset_deduplicates() {
        let d = random_dataset(20, 1, 8);
        let cs = vec![0, 1, 1, 2, 0];
        let (cds, mapping) = coreset_dataset(&d, &cs).unwrap();
        assert_eq!(cds.len(), 3);
        assert_eq!(mapping, vec![0, 1, 2]);
    }

    #[test]
    fn empty_chunks_are_skipped() {
        let d = random_dataset(30, 1, 9);
        let chunks = vec![vec![], (0..30).collect::<Vec<usize>>(), vec![]];
        let cs = composable_coreset(&d, &chunks, 4, 0);
        assert_eq!(cs.len(), 4);
    }
}
