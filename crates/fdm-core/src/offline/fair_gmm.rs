//! FairGMM — offline `1/5`-approximation for FDM with small `k` and `m`
//! (Moumoulidou et al., ICDT 2021; §V-A baseline).
//!
//! For each group `i`, GMM run inside `X_i` yields a candidate pool of `k`
//! well-separated elements; FairGMM then enumerates every way of choosing
//! `k_i` candidates from pool `i` and keeps the fair combination with
//! maximum diversity. The enumeration size is `∏_i C(k, k_i)` — up to
//! `C(km, k)` — which is why the paper only reports it for `k ≤ 10` and
//! `m ≤ 5` (Table II omits it entirely). Branch-and-bound pruning on the
//! running minimum distance keeps small instances fast without changing the
//! result.

use crate::dataset::Dataset;
use crate::error::{FdmError, Result};
use crate::fairness::FairnessConstraint;
use crate::offline::gmm::gmm_on_subset;
use crate::point::Element;
use crate::solution::Solution;

/// Configuration for [`FairGmm`].
#[derive(Debug, Clone)]
pub struct FairGmmConfig {
    /// Per-group quotas.
    pub constraint: FairnessConstraint,
    /// Seed for GMM start-element selection.
    pub seed: u64,
    /// Safety cap on the number of enumerated combinations; the run aborts
    /// with an error once exceeded (the paper's observation that FairGMM
    /// "cannot scale to k > 10 and m > 5" made explicit). Default `10^7`.
    pub max_combinations: u64,
}

impl FairGmmConfig {
    /// Creates a config with the default combination cap.
    pub fn new(constraint: FairnessConstraint, seed: u64) -> Self {
        FairGmmConfig {
            constraint,
            seed,
            max_combinations: 10_000_000,
        }
    }
}

/// The FairGMM algorithm. See the module docs.
#[derive(Debug, Clone)]
pub struct FairGmm {
    config: FairGmmConfig,
}

impl FairGmm {
    /// Creates the algorithm.
    pub fn new(config: FairGmmConfig) -> Result<Self> {
        if config.constraint.num_groups() == 0 {
            return Err(FdmError::EmptyConstraint);
        }
        Ok(FairGmm { config })
    }

    /// Estimated number of combinations `∏_i C(k, k_i)` for feasibility
    /// checks before running.
    pub fn combination_count(&self) -> u64 {
        let k = self.config.constraint.total();
        let mut total: u64 = 1;
        for &ki in self.config.constraint.quotas() {
            total = total.saturating_mul(binomial(k as u64, ki as u64));
        }
        total
    }

    /// Runs FairGMM on `dataset`.
    pub fn run(&self, dataset: &Dataset) -> Result<Solution> {
        let constraint = &self.config.constraint;
        constraint.check_feasible(dataset.group_sizes())?;
        if self.combination_count() > self.config.max_combinations {
            return Err(FdmError::NotEnoughElements {
                required: self.config.max_combinations as usize,
                available: usize::MAX,
            });
        }
        let k = constraint.total();
        let m = constraint.num_groups();

        // Per-group candidate pools: GMM inside each group, pool size k.
        let mut pools: Vec<Vec<Element>> = Vec::with_capacity(m);
        for g in 0..m {
            let members = dataset.group_indices(g);
            let pool = gmm_on_subset(dataset, &members, k, self.config.seed);
            if pool.len() < constraint.quota(g) {
                return Err(FdmError::InfeasibleConstraint {
                    group: g,
                    requested: constraint.quota(g),
                    available: pool.len(),
                });
            }
            pools.push(pool.iter().map(|&i| dataset.element(i)).collect());
        }

        // Branch-and-bound over fair combinations.
        let metric = dataset.metric();
        let mut best_div = -1.0f64;
        let mut best: Vec<Element> = Vec::new();
        let mut current: Vec<Element> = Vec::with_capacity(k);

        // Recursion over groups; within a group, over pool combinations.
        // The argument list mirrors the branch-and-bound state; bundling it
        // into a struct would only rename the same ten fields.
        #[allow(clippy::too_many_arguments)]
        fn rec(
            pools: &[Vec<Element>],
            quotas: &[usize],
            metric: crate::metric::Metric,
            g: usize,
            pool_pos: usize,
            taken_in_group: usize,
            current: &mut Vec<Element>,
            current_div: f64,
            best_div: &mut f64,
            best: &mut Vec<Element>,
        ) {
            // Prune: the running min distance can only shrink.
            if current_div <= *best_div {
                return;
            }
            if g == pools.len() {
                if current_div > *best_div {
                    *best_div = current_div;
                    *best = current.clone();
                }
                return;
            }
            if taken_in_group == quotas[g] {
                rec(
                    pools,
                    quotas,
                    metric,
                    g + 1,
                    0,
                    0,
                    current,
                    current_div,
                    best_div,
                    best,
                );
                return;
            }
            let remaining_needed = quotas[g] - taken_in_group;
            let pool = &pools[g];
            if pool.len() - pool_pos < remaining_needed {
                return;
            }
            for p in pool_pos..pool.len() {
                let cand = &pool[p];
                let mut new_div = current_div;
                for e in current.iter() {
                    let d = metric.dist(&cand.point, &e.point);
                    if d < new_div {
                        new_div = d;
                    }
                }
                if new_div > *best_div {
                    current.push(cand.clone());
                    rec(
                        pools,
                        quotas,
                        metric,
                        g,
                        p + 1,
                        taken_in_group + 1,
                        current,
                        new_div,
                        best_div,
                        best,
                    );
                    current.pop();
                }
            }
        }
        rec(
            &pools,
            constraint.quotas(),
            metric,
            0,
            0,
            0,
            &mut current,
            f64::INFINITY,
            &mut best_div,
            &mut best,
        );
        if best.len() != k {
            return Err(FdmError::NoFeasibleCandidate);
        }
        Ok(Solution::from_elements(best, metric))
    }
}

/// Binomial coefficient with saturation.
fn binomial(n: u64, k: u64) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut result: u64 = 1;
    for i in 0..k {
        result = result.saturating_mul(n - i) / (i + 1);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::exact_fair_optimum;
    use crate::metric::Metric;
    use rand::prelude::*;

    fn random_dataset(n: usize, m: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![rng.random::<f64>() * 10.0, rng.random::<f64>() * 10.0])
            .collect();
        let mut groups: Vec<usize> = (0..n).map(|_| rng.random_range(0..m)).collect();
        for g in 0..m {
            groups[g] = g;
        }
        Dataset::from_rows(rows, groups, Metric::Euclidean).unwrap()
    }

    #[test]
    fn binomial_values() {
        assert_eq!(binomial(10, 5), 252);
        assert_eq!(binomial(5, 0), 1);
        assert_eq!(binomial(5, 6), 0);
        assert_eq!(binomial(52, 5), 2_598_960);
    }

    #[test]
    fn returns_fair_solution() {
        let d = random_dataset(40, 2, 1);
        let constraint = FairnessConstraint::new(vec![3, 3]).unwrap();
        let alg = FairGmm::new(FairGmmConfig::new(constraint, 0)).unwrap();
        let sol = alg.run(&d).unwrap();
        assert_eq!(sol.len(), 6);
        assert_eq!(sol.group_counts(2), vec![3, 3]);
    }

    #[test]
    fn beats_or_matches_one_fifth_of_optimum() {
        for trial in 0..6 {
            let d = random_dataset(12, 2, 200 + trial);
            let constraint = FairnessConstraint::new(vec![2, 2]).unwrap();
            let (opt, _) = exact_fair_optimum(&d, &constraint);
            let alg = FairGmm::new(FairGmmConfig::new(constraint, trial)).unwrap();
            let sol = alg.run(&d).unwrap();
            assert!(
                sol.diversity >= opt / 5.0 - 1e-9,
                "trial {trial}: FairGMM {} < OPT_f/5 = {}",
                sol.diversity,
                opt / 5.0
            );
        }
    }

    #[test]
    fn usually_near_optimal_on_small_instances() {
        // FairGMM is the quality reference for small k in Fig. 6; on easy
        // instances it should be close to exact.
        let mut ratios = Vec::new();
        for trial in 0..6 {
            let d = random_dataset(10, 2, 300 + trial);
            let constraint = FairnessConstraint::new(vec![1, 1]).unwrap();
            let (opt, _) = exact_fair_optimum(&d, &constraint);
            let alg = FairGmm::new(FairGmmConfig::new(constraint, trial)).unwrap();
            let sol = alg.run(&d).unwrap();
            ratios.push(sol.diversity / opt);
        }
        let avg: f64 = ratios.iter().sum::<f64>() / ratios.len() as f64;
        assert!(avg > 0.8, "average ratio {avg} too low: {ratios:?}");
    }

    #[test]
    fn combination_cap_trips_for_large_k() {
        let constraint = FairnessConstraint::equal_representation(40, 2).unwrap();
        let alg = FairGmm::new(FairGmmConfig::new(constraint, 0)).unwrap();
        assert!(alg.combination_count() > 10_000_000);
        let d = random_dataset(100, 2, 4);
        assert!(alg.run(&d).is_err());
    }

    #[test]
    fn three_groups_work() {
        let d = random_dataset(30, 3, 7);
        let constraint = FairnessConstraint::new(vec![2, 2, 2]).unwrap();
        let alg = FairGmm::new(FairGmmConfig::new(constraint, 0)).unwrap();
        let sol = alg.run(&d).unwrap();
        assert_eq!(sol.group_counts(3), vec![2, 2, 2]);
    }
}
