//! Offline baseline algorithms from the paper's evaluation (§V-A):
//! Gonzalez's greedy ([`gmm`]), and the three fair offline algorithms of
//! Moumoulidou et al. (ICDT 2021) — [`fair_swap`] (`1/4`, `m = 2`),
//! [`fair_flow`] (`1/(3m−1)`, any `m`), and [`fair_gmm`] (`1/5`, small
//! `k`/`m`).
//!
//! These keep the whole dataset in memory and make random accesses over it;
//! the paper's headline result is that the streaming algorithms match their
//! quality while being orders of magnitude faster per element and using
//! `O(poly(k, m, log ∆)/ε)` space.

pub mod fair_flow;
pub mod fair_gmm;
pub mod fair_swap;
pub mod gmm;
