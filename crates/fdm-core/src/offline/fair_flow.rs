//! FairFlow — offline `1/(3m−1)`-style approximation for FDM with any
//! number of groups (Moumoulidou et al., ICDT 2021; §V-A baseline).
//!
//! The paper reimplemented FairFlow from the ICDT description, as do we
//! (no public reference code; see DESIGN.md §4.7 for the substitution note).
//! The reconstruction follows the published structure:
//!
//! 1. Run GMM to pick `t ≥ k` well-separated centers and partition the
//!    dataset into Voronoi clusters around them.
//! 2. Reduce fair selection to max-flow on the bipartite DAG
//!    `source → group i (cap k_i) → cluster j (cap 1, edge iff cluster j
//!    holds a member of group i) → sink (cap 1)`; a flow of value `k`
//!    selects at most one element per cluster while meeting every quota.
//! 3. If the flow is smaller than `k`, double `t` and retry — more, smaller
//!    clusters only make the matching easier, and `t = n` always succeeds
//!    when the constraint is feasible.
//!
//! Each saturated `(group, cluster)` edge is realized by an *arbitrary*
//! member of that group in the cluster (the first one in row order), as in
//! the ICDT description — the analysis only uses the cluster radius, and
//! this arbitrariness is precisely why FairFlow's practical quality is poor
//! and degrades as `m` grows (Table II, Figs. 6/10/11; §IV-B: "its solution
//! is of poor quality in practice, particularly so when m is large").

use crate::dataset::Dataset;
use crate::error::{FdmError, Result};
use crate::fairness::FairnessConstraint;
use crate::flow::FlowNetwork;
use crate::offline::gmm::gmm;
use crate::point::Element;
use crate::solution::Solution;

/// Configuration for [`FairFlow`].
#[derive(Debug, Clone)]
pub struct FairFlowConfig {
    /// Per-group quotas (any number of groups ≥ 2).
    pub constraint: FairnessConstraint,
    /// Seed for GMM start-element selection.
    pub seed: u64,
}

/// The FairFlow algorithm. See the module docs.
#[derive(Debug, Clone)]
pub struct FairFlow {
    config: FairFlowConfig,
}

impl FairFlow {
    /// Creates the algorithm.
    pub fn new(config: FairFlowConfig) -> Result<Self> {
        if config.constraint.num_groups() < 2 {
            return Err(FdmError::EmptyConstraint);
        }
        Ok(FairFlow { config })
    }

    /// Runs FairFlow on `dataset`.
    pub fn run(&self, dataset: &Dataset) -> Result<Solution> {
        let constraint = &self.config.constraint;
        constraint.check_feasible(dataset.group_sizes())?;
        let k = constraint.total();
        let n = dataset.len();
        if n < k {
            return Err(FdmError::NotEnoughElements {
                required: k,
                available: n,
            });
        }
        let m = constraint.num_groups();

        let mut t = k;
        loop {
            let selection = self.attempt(dataset, constraint, k, m, t)?;
            if let Some(indices) = selection {
                let elements: Vec<Element> = indices.iter().map(|&i| dataset.element(i)).collect();
                return Ok(Solution::from_elements(elements, dataset.metric()));
            }
            if t >= n {
                // Feasibility was checked, and with t = n each element is
                // its own cluster, so the flow must have saturated.
                return Err(FdmError::NoFeasibleCandidate);
            }
            t = (t * 2).min(n);
        }
    }

    /// One clustering + flow attempt with `t` centers. Returns the selected
    /// rows if the flow saturates all quotas.
    fn attempt(
        &self,
        dataset: &Dataset,
        constraint: &FairnessConstraint,
        k: usize,
        m: usize,
        t: usize,
    ) -> Result<Option<Vec<usize>>> {
        let centers = gmm(dataset, t, self.config.seed);
        let t = centers.len(); // may be fewer under duplicates
        let n = dataset.len();

        // Voronoi assignment: nearest center per element.
        let mut cluster_of = vec![0usize; n];
        for i in 0..n {
            let mut best = f64::INFINITY;
            let mut arg = 0usize;
            for (c, &center) in centers.iter().enumerate() {
                let d = dataset.dist(i, center);
                if d < best {
                    best = d;
                    arg = c;
                }
            }
            cluster_of[i] = arg;
        }

        // Per (group, cluster): an arbitrary member (first in row order),
        // matching the ICDT algorithm's analysis-only use of clusters.
        let mut representative: Vec<Vec<Option<usize>>> = vec![vec![None; t]; m];
        for i in 0..n {
            let g = dataset.group(i);
            let c = cluster_of[i];
            if representative[g][c].is_none() {
                representative[g][c] = Some(i);
            }
        }

        // Flow network: 0 = source, 1..=m groups, m+1..m+t clusters, last = sink.
        let source = 0;
        let group_node = |g: usize| 1 + g;
        let cluster_node = |c: usize| 1 + m + c;
        let sink = 1 + m + t;
        let mut net = FlowNetwork::new(sink + 1);
        for g in 0..m {
            net.add_edge(source, group_node(g), constraint.quota(g) as i64);
        }
        let mut edge_handles: Vec<(usize, usize, usize)> = Vec::new();
        for g in 0..m {
            for c in 0..t {
                if representative[g][c].is_some() {
                    let h = net.add_edge(group_node(g), cluster_node(c), 1);
                    edge_handles.push((g, c, h));
                }
            }
        }
        for c in 0..t {
            net.add_edge(cluster_node(c), sink, 1);
        }

        let flow = net.max_flow(source, sink);
        if flow < k as i64 {
            return Ok(None);
        }
        let mut selected = Vec::with_capacity(k);
        for &(g, c, h) in &edge_handles {
            if net.flow_on(h) > 0 {
                let row = representative[g][c].expect("edge implies representative");
                selected.push(row);
            }
        }
        debug_assert_eq!(selected.len(), k);
        Ok(Some(selected))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::exact_fair_optimum;
    use crate::diversity::diversity;
    use crate::metric::Metric;
    use rand::prelude::*;

    fn config(quotas: Vec<usize>) -> FairFlowConfig {
        FairFlowConfig {
            constraint: FairnessConstraint::new(quotas).unwrap(),
            seed: 0,
        }
    }

    fn random_dataset(n: usize, m: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![rng.random::<f64>() * 10.0, rng.random::<f64>() * 10.0])
            .collect();
        let mut groups: Vec<usize> = (0..n).map(|_| rng.random_range(0..m)).collect();
        // Guarantee every group is populated.
        for g in 0..m {
            groups[g] = g;
        }
        Dataset::from_rows(rows, groups, Metric::Euclidean).unwrap()
    }

    #[test]
    fn produces_fair_solution_two_groups() {
        let d = random_dataset(60, 2, 1);
        let alg = FairFlow::new(config(vec![3, 3])).unwrap();
        let sol = alg.run(&d).unwrap();
        assert_eq!(sol.len(), 6);
        assert_eq!(sol.group_counts(2), vec![3, 3]);
        assert!(sol.diversity > 0.0);
    }

    #[test]
    fn produces_fair_solution_many_groups() {
        let d = random_dataset(200, 7, 2);
        let quotas = vec![2, 2, 2, 2, 2, 2, 2];
        let alg = FairFlow::new(config(quotas.clone())).unwrap();
        let sol = alg.run(&d).unwrap();
        assert_eq!(sol.len(), 14);
        assert_eq!(sol.group_counts(7), quotas);
    }

    #[test]
    fn doubling_handles_concentrated_minority() {
        // Group 1 is a tight cluster inside group 0's spread: the first
        // k-center clustering may put the whole minority in one cluster,
        // forcing a retry with more centers.
        let mut rows = Vec::new();
        let mut groups = Vec::new();
        for i in 0..40 {
            rows.push(vec![i as f64, 0.0]);
            groups.push(0);
        }
        for i in 0..5 {
            rows.push(vec![20.0 + 0.01 * i as f64, 0.0]);
            groups.push(1);
        }
        let d = Dataset::from_rows(rows, groups, Metric::Euclidean).unwrap();
        let alg = FairFlow::new(config(vec![2, 3])).unwrap();
        let sol = alg.run(&d).unwrap();
        assert_eq!(sol.group_counts(2), vec![2, 3]);
    }

    #[test]
    fn rejects_infeasible() {
        let d = random_dataset(20, 2, 3);
        let alg = FairFlow::new(config(vec![30, 2])).unwrap();
        assert!(matches!(
            alg.run(&d),
            Err(FdmError::InfeasibleConstraint { .. })
        ));
    }

    #[test]
    fn solution_quality_is_positive_fraction_of_optimum() {
        // FairFlow has no tight guarantee in our reconstruction (and the
        // paper stresses its poor practical quality), so individual tiny
        // instances can be bad; require the *average* ratio over easy random
        // instances to stay within a small constant of OPT_f, plus a weak
        // per-instance floor.
        let mut ratios = Vec::new();
        for trial in 0..10 {
            let d = random_dataset(14, 2, 100 + trial);
            let constraint = FairnessConstraint::new(vec![2, 2]).unwrap();
            let (opt, _) = exact_fair_optimum(&d, &constraint);
            let alg = FairFlow::new(FairFlowConfig {
                constraint,
                seed: trial,
            })
            .unwrap();
            let sol = alg.run(&d).unwrap();
            if opt > 0.0 {
                ratios.push(sol.diversity / opt);
            }
        }
        let avg: f64 = ratios.iter().sum::<f64>() / ratios.len() as f64;
        let worst = ratios.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(
            avg >= 1.0 / 4.0,
            "FairFlow average ratio degraded to {avg}: {ratios:?}"
        );
        assert!(
            worst >= 1.0 / 20.0,
            "FairFlow worst ratio degraded to {worst}: {ratios:?}"
        );
    }

    #[test]
    fn selected_rows_are_distinct() {
        let d = random_dataset(80, 4, 5);
        let alg = FairFlow::new(config(vec![2, 2, 2, 2])).unwrap();
        let sol = alg.run(&d).unwrap();
        let mut ids = sol.ids();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 8);
    }

    #[test]
    fn diversity_matches_recomputation() {
        let d = random_dataset(50, 3, 8);
        let alg = FairFlow::new(config(vec![2, 2, 2])).unwrap();
        let sol = alg.run(&d).unwrap();
        let recomputed = diversity(&d, &sol.ids());
        assert!((sol.diversity - recomputed).abs() < 1e-12);
    }
}
