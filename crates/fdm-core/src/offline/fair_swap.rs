//! FairSwap — offline `1/4`-approximation for FDM with `m = 2` groups
//! (Moumoulidou et al., ICDT 2021; §V-A baseline).
//!
//! Runs GMM over the whole dataset for a group-blind solution of size
//! `k = k_1 + k_2`, runs GMM within each group for swap pools of size `k_i`,
//! and balances the blind solution with the same insert-furthest /
//! delete-closest rule as SFDM1's post-processing ([`crate::balance`]).
//! Unlike SFDM1 it keeps the entire dataset in memory and random-accesses it
//! (`O(n)` space, `O(nk)` time), which is exactly the inefficiency the
//! paper's streaming algorithms remove.

use crate::balance::{balance_two_groups, SwapStrategy};
use crate::dataset::Dataset;
use crate::error::{FdmError, Result};
use crate::fairness::FairnessConstraint;
use crate::offline::gmm::{gmm, gmm_on_subset};
use crate::point::PointId;
use crate::solution::Solution;

/// Configuration for [`FairSwap`].
#[derive(Debug, Clone)]
pub struct FairSwapConfig {
    /// Per-group quotas; must have exactly two groups.
    pub constraint: FairnessConstraint,
    /// Seed for GMM start-element selection.
    pub seed: u64,
    /// Insert/delete selection rule (paper uses [`SwapStrategy::Greedy`]).
    pub strategy: SwapStrategy,
}

/// The FairSwap algorithm. See the module docs.
#[derive(Debug, Clone)]
pub struct FairSwap {
    config: FairSwapConfig,
}

impl FairSwap {
    /// Creates the algorithm, validating that the constraint has two groups.
    pub fn new(config: FairSwapConfig) -> Result<Self> {
        if config.constraint.num_groups() != 2 {
            return Err(FdmError::InvalidGroup {
                group: config.constraint.num_groups(),
                num_groups: 2,
            });
        }
        Ok(FairSwap { config })
    }

    /// Runs FairSwap on `dataset`.
    pub fn run(&self, dataset: &Dataset) -> Result<Solution> {
        let constraint = &self.config.constraint;
        constraint.check_feasible(dataset.group_sizes())?;
        let k = constraint.total();
        if dataset.len() < k {
            return Err(FdmError::NotEnoughElements {
                required: k,
                available: dataset.len(),
            });
        }

        // Group-blind GMM solution of size k (arena ids into the dataset's
        // point store — balancing runs over contiguous rows).
        let blind = gmm(dataset, k, self.config.seed);
        let mut solution: Vec<PointId> = blind.iter().map(|&i| dataset.point_id(i)).collect();

        // Group-specific GMM pools of size k_i.
        let mut pools: Vec<Vec<PointId>> = Vec::with_capacity(2);
        for g in 0..2 {
            let members = dataset.group_indices(g);
            let pool = gmm_on_subset(dataset, &members, constraint.quota(g), self.config.seed);
            pools.push(pool.iter().map(|&i| dataset.point_id(i)).collect());
        }

        let balanced = balance_two_groups(
            dataset.store(),
            &mut solution,
            &pools,
            constraint,
            dataset.metric(),
            self.config.strategy,
        );
        if !balanced {
            return Err(FdmError::NoFeasibleCandidate);
        }
        Ok(Solution::from_ids(
            dataset.store(),
            &solution,
            dataset.metric(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::exact_fair_optimum;
    use crate::metric::Metric;
    use rand::prelude::*;

    fn two_group_line(n: usize) -> Dataset {
        let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64]).collect();
        let groups: Vec<usize> = (0..n).map(|i| i % 2).collect();
        Dataset::from_rows(rows, groups, Metric::Euclidean).unwrap()
    }

    fn config(k1: usize, k2: usize) -> FairSwapConfig {
        FairSwapConfig {
            constraint: FairnessConstraint::new(vec![k1, k2]).unwrap(),
            seed: 0,
            strategy: SwapStrategy::Greedy,
        }
    }

    #[test]
    fn returns_fair_solution() {
        let d = two_group_line(40);
        let alg = FairSwap::new(config(3, 3)).unwrap();
        let sol = alg.run(&d).unwrap();
        assert_eq!(sol.len(), 6);
        assert_eq!(sol.group_counts(2), vec![3, 3]);
        assert!(sol.diversity > 0.0);
    }

    #[test]
    fn rejects_non_binary_constraint() {
        let c = FairnessConstraint::new(vec![1, 1, 1]).unwrap();
        let cfg = FairSwapConfig {
            constraint: c,
            seed: 0,
            strategy: SwapStrategy::Greedy,
        };
        assert!(FairSwap::new(cfg).is_err());
    }

    #[test]
    fn rejects_infeasible_dataset() {
        // Group 1 has only 1 element but quota 2.
        let d = Dataset::from_rows(
            vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]],
            vec![0, 0, 0, 1],
            Metric::Euclidean,
        )
        .unwrap();
        let alg = FairSwap::new(config(2, 2)).unwrap();
        assert!(matches!(
            alg.run(&d),
            Err(FdmError::InfeasibleConstraint { .. })
        ));
    }

    #[test]
    fn quarter_approximation_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(99);
        for trial in 0..8 {
            let n = 14;
            let rows: Vec<Vec<f64>> = (0..n)
                .map(|_| vec![rng.random::<f64>() * 10.0, rng.random::<f64>() * 10.0])
                .collect();
            let groups: Vec<usize> = (0..n).map(|_| rng.random_range(0..2)).collect();
            // Ensure both groups have at least 2 members.
            let mut groups = groups;
            groups[0] = 0;
            groups[1] = 0;
            groups[2] = 1;
            groups[3] = 1;
            let d = Dataset::from_rows(rows, groups, Metric::Euclidean).unwrap();
            let constraint = FairnessConstraint::new(vec![2, 2]).unwrap();
            let (opt, _) = exact_fair_optimum(&d, &constraint);
            let alg = FairSwap::new(FairSwapConfig {
                constraint,
                seed: trial,
                strategy: SwapStrategy::Greedy,
            })
            .unwrap();
            let sol = alg.run(&d).unwrap();
            assert!(
                sol.diversity >= opt / 4.0 - 1e-9,
                "trial {trial}: FairSwap {} < OPT_f/4 = {}",
                sol.diversity,
                opt / 4.0
            );
        }
    }

    #[test]
    fn skewed_groups_still_balanced() {
        // 90% group 0, 10% group 1.
        let rows: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64, (i as f64).sin()]).collect();
        let groups: Vec<usize> = (0..50).map(|i| usize::from(i % 10 == 0)).collect();
        let d = Dataset::from_rows(rows, groups, Metric::Euclidean).unwrap();
        let alg = FairSwap::new(config(5, 5)).unwrap();
        let sol = alg.run(&d).unwrap();
        assert_eq!(sol.group_counts(2), vec![5, 5]);
    }
}
