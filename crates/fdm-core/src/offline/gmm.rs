//! GMM — Gonzalez's greedy algorithm for unconstrained max–min diversity.
//!
//! The classic `1/2`-approximation [Gonzalez 1985; Ravi et al. 1994]: start
//! from an arbitrary element and repeatedly add the element furthest from
//! the current selection. `O(nk)` distance computations via the standard
//! cached nearest-center distance array.
//!
//! The paper uses GMM (a) as the unconstrained quality reference in Table II
//! and Fig. 6, (b) doubled as an upper bound on `OPT_f` (§V-A), and (c) as
//! the selection subroutine inside FairSwap/FairGMM.

use crate::dataset::Dataset;

/// Runs GMM on the whole dataset, seeding the start element with `seed`.
///
/// Returns at most `k` row indices (fewer if `n < k`). The first element is
/// `seed % n`, matching the paper's "arbitrary" start deterministically.
///
/// # Examples
///
/// ```
/// use fdm_core::dataset::Dataset;
/// use fdm_core::diversity::diversity;
/// use fdm_core::metric::Metric;
/// use fdm_core::offline::gmm::gmm;
///
/// let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
/// let dataset = Dataset::from_rows(rows, vec![0; 10], Metric::Euclidean)?;
/// let selected = gmm(&dataset, 3, 0);
/// assert_eq!(selected.len(), 3);
/// // 1/2-approximation: optimal div for k=3 on 0..9 is 4.5.
/// assert!(diversity(&dataset, &selected) >= 4.5 / 2.0);
/// # Ok::<(), fdm_core::FdmError>(())
/// ```
pub fn gmm(dataset: &Dataset, k: usize, seed: u64) -> Vec<usize> {
    let indices: Vec<usize> = (0..dataset.len()).collect();
    gmm_on_subset(dataset, &indices, k, seed)
}

/// Runs GMM with an explicit starting row.
pub fn gmm_with_start(dataset: &Dataset, k: usize, start: usize) -> Vec<usize> {
    let indices: Vec<usize> = (0..dataset.len()).collect();
    gmm_on_subset_with_start(dataset, &indices, k, start)
}

/// Runs GMM restricted to `indices` (used by FairSwap/FairGMM to run on one
/// group `X_i`).
pub fn gmm_on_subset(dataset: &Dataset, indices: &[usize], k: usize, seed: u64) -> Vec<usize> {
    if indices.is_empty() || k == 0 {
        return Vec::new();
    }
    let start = indices[(seed % indices.len() as u64) as usize];
    gmm_on_subset_with_start(dataset, indices, k, start)
}

/// GMM on a subset with an explicit start row (must be in `indices`).
pub fn gmm_on_subset_with_start(
    dataset: &Dataset,
    indices: &[usize],
    k: usize,
    start: usize,
) -> Vec<usize> {
    if indices.is_empty() || k == 0 {
        return Vec::new();
    }
    debug_assert!(indices.contains(&start));
    let mut selected = Vec::with_capacity(k.min(indices.len()));
    selected.push(start);
    // dist_to_sel[i] = d(indices[i], selected set).
    let mut dist_to_sel: Vec<f64> = indices.iter().map(|&i| dataset.dist(i, start)).collect();
    while selected.len() < k.min(indices.len()) {
        // Furthest-point selection.
        let (best_pos, &best_d) = dist_to_sel
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .expect("non-empty");
        if best_d <= 0.0 {
            // All remaining rows duplicate the selection; no point adding
            // zero-diversity elements beyond what's required.
            break;
        }
        let chosen = indices[best_pos];
        selected.push(chosen);
        for (pos, &i) in indices.iter().enumerate() {
            let d = dataset.dist(i, chosen);
            if d < dist_to_sel[pos] {
                dist_to_sel[pos] = d;
            }
        }
    }
    selected
}

/// GMM that returns the full greedy permutation of the subset (up to `k`)
/// together with each element's insertion distance `d(x, S_before)`.
///
/// The insertion distances are non-increasing; prefix `j` of the permutation
/// is exactly the GMM solution of size `j`, a property FairGMM exploits to
/// build candidate pools.
pub fn gmm_permutation(
    dataset: &Dataset,
    indices: &[usize],
    k: usize,
    seed: u64,
) -> Vec<(usize, f64)> {
    if indices.is_empty() || k == 0 {
        return Vec::new();
    }
    let start = indices[(seed % indices.len() as u64) as usize];
    let mut out = Vec::with_capacity(k.min(indices.len()));
    out.push((start, f64::INFINITY));
    let mut dist_to_sel: Vec<f64> = indices.iter().map(|&i| dataset.dist(i, start)).collect();
    while out.len() < k.min(indices.len()) {
        let (best_pos, &best_d) = dist_to_sel
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .expect("non-empty");
        if best_d <= 0.0 {
            break;
        }
        let chosen = indices[best_pos];
        out.push((chosen, best_d));
        for (pos, &i) in indices.iter().enumerate() {
            let d = dataset.dist(i, chosen);
            if d < dist_to_sel[pos] {
                dist_to_sel[pos] = d;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::exact_unconstrained_optimum;
    use crate::diversity::diversity;
    use crate::metric::Metric;

    fn grid_dataset() -> Dataset {
        let mut rows = Vec::new();
        for i in 0..5 {
            for j in 0..5 {
                rows.push(vec![i as f64, j as f64]);
            }
        }
        Dataset::from_rows(rows, vec![0; 25], Metric::Euclidean).unwrap()
    }

    #[test]
    fn selects_k_elements() {
        let d = grid_dataset();
        let sol = gmm(&d, 4, 0);
        assert_eq!(sol.len(), 4);
        // No duplicates.
        let mut sorted = sol.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4);
    }

    #[test]
    fn first_pick_is_furthest_from_start() {
        let d = Dataset::from_rows(
            vec![vec![0.0], vec![1.0], vec![10.0]],
            vec![0; 3],
            Metric::Euclidean,
        )
        .unwrap();
        let sol = gmm_with_start(&d, 2, 0);
        assert_eq!(sol, vec![0, 2]);
    }

    #[test]
    fn achieves_half_approximation_on_random_sets() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(7);
        for trial in 0..10 {
            let n = 12;
            let rows: Vec<Vec<f64>> = (0..n)
                .map(|_| vec![rng.random::<f64>(), rng.random::<f64>()])
                .collect();
            let d = Dataset::from_rows(rows, vec![0; n], Metric::Euclidean).unwrap();
            let k = 4;
            let opt = exact_unconstrained_optimum(&d, k);
            let sol = gmm(&d, k, trial);
            let div = diversity(&d, &sol);
            assert!(
                div >= opt / 2.0 - 1e-9,
                "trial {trial}: GMM {div} < OPT/2 = {}",
                opt / 2.0
            );
        }
    }

    #[test]
    fn subset_restriction_is_respected() {
        let d = grid_dataset();
        let subset: Vec<usize> = (0..25).filter(|i| i % 2 == 0).collect();
        let sol = gmm_on_subset(&d, &subset, 5, 3);
        assert_eq!(sol.len(), 5);
        for i in &sol {
            assert!(subset.contains(i));
        }
    }

    #[test]
    fn duplicates_terminate_early() {
        let d = Dataset::from_rows(
            vec![vec![0.0], vec![0.0], vec![0.0], vec![1.0]],
            vec![0; 4],
            Metric::Euclidean,
        )
        .unwrap();
        let sol = gmm(&d, 4, 0);
        // Only two distinct locations exist.
        assert_eq!(sol.len(), 2);
    }

    #[test]
    fn permutation_prefix_property() {
        let d = grid_dataset();
        let perm = gmm_permutation(&d, &(0..25).collect::<Vec<_>>(), 6, 0);
        assert_eq!(perm.len(), 6);
        // Insertion distances are non-increasing.
        for w in perm.windows(2) {
            assert!(w[0].1 >= w[1].1 - 1e-12);
        }
        // Prefix of length 4 equals gmm with same start.
        let pref: Vec<usize> = perm.iter().take(4).map(|&(i, _)| i).collect();
        let direct = gmm_with_start(&d, 4, perm[0].0);
        assert_eq!(pref, direct);
    }

    #[test]
    fn empty_and_zero_k() {
        let d = grid_dataset();
        assert!(gmm(&d, 0, 0).is_empty());
        assert!(gmm_on_subset(&d, &[], 3, 0).is_empty());
    }

    #[test]
    fn k_larger_than_n_returns_all() {
        let d = Dataset::from_rows(
            vec![vec![0.0], vec![1.0], vec![2.0]],
            vec![0; 3],
            Metric::Euclidean,
        )
        .unwrap();
        let sol = gmm(&d, 10, 0);
        assert_eq!(sol.len(), 3);
    }
}
