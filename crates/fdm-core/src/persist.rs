//! Versioned snapshot/restore persistence for the streaming summaries.
//!
//! The paper's central property — the summary *is* the whole recoverable
//! state and is provably small (`O(m·k·log ∆/ε)` elements, independent of
//! the stream length) — makes checkpointing cheap: persisting a streaming
//! algorithm means persisting its candidate ladders and the shared
//! [`PointStore`] arena, nothing else.
//!
//! A [`Snapshot`] is a versioned envelope with two on-disk encodings
//! ([`SnapshotFormat`]):
//!
//! * **v1 (JSON)** — one text document, frozen forever and still fully
//!   readable:
//!
//! ```json
//! {
//!   "magic": "FDMSNAP",
//!   "version": 1,
//!   "params": { "algorithm": "sfdm2", "dim": 2, "epsilon": 0.1, ... },
//!   "state": { ... }
//! }
//! ```
//!
//! * **v2 (binary)** — the same envelope framed as CRC32-checked
//!   little-endian sections with dense `f64` row blobs and varint-packed
//!   ids ([`codec`]); ~3–4× smaller and faster to capture.
//!
//! On top of full snapshots, [`delta`] implements **incremental
//! checkpoints**: a [`SnapshotDelta`] records only what changed since the
//! previous capture (appended arena rows, new candidate members, counter
//! updates) and chains as `full + delta*`, each link verified by a
//! checksum of the state it applies to.
//!
//! `params` ([`SnapshotParams`]) duplicates the load-bearing configuration
//! (algorithm tag, dimension, `ε`, metric, distance bounds, quotas, shard
//! count) so a consumer can check compatibility *before* decoding the full
//! state, and so a restored instance can be cross-validated against the
//! envelope. All failure modes are typed [`FdmError`] variants — bad magic,
//! truncated JSON, or internally inconsistent state report
//! [`FdmError::CorruptSnapshot`]; a newer format version reports
//! [`FdmError::UnsupportedSnapshotVersion`]; a well-formed snapshot of the
//! wrong algorithm/dimension/parameters reports
//! [`FdmError::IncompatibleSnapshot`] — never a panic, and never garbage
//! distances from silently mixing dimensions.
//!
//! Restoring is **bit-exact**: coordinates and thresholds round-trip
//! through JSON via Rust's shortest-round-trip `f64` formatting, the norm
//! cache and guess ladder are rebuilt through the same code paths the
//! original run used, and continuing an interrupted stream after
//! restore yields solutions bit-identical to an uninterrupted run (pinned
//! by `tests/persist.rs` and the `fdm-serve` CI job).
//!
//! [`Snapshottable`] is implemented by all four streaming summaries:
//! [`StreamingDiversityMaximization`](crate::streaming::unconstrained::StreamingDiversityMaximization)
//! (tag `unconstrained`), [`Sfdm1`](crate::streaming::sfdm1::Sfdm1) (tag
//! `sfdm1`), [`Sfdm2`](crate::streaming::sfdm2::Sfdm2) (tag `sfdm2`), and
//! [`ShardedStream<S>`](crate::streaming::sharded::ShardedStream) (tag
//! `sharded:<inner>`).

use std::path::Path;

use serde::{Deserialize, Serialize, Value};

use crate::dataset::DistanceBounds;
use crate::error::{FdmError, Result};
use crate::metric::Metric;
use crate::point::{PointId, PointStore};
use crate::streaming::candidate::Candidate;

pub mod codec;
pub mod delta;

pub use delta::{CaptureMark, SnapshotDelta, StatePatch};

/// Magic string identifying an FDM snapshot document.
pub const SNAPSHOT_MAGIC: &str = "FDMSNAP";

/// JSON (v1) snapshot format version: the version [`Snapshot::to_json`]
/// writes and the only version [`Snapshot::from_json`] reads. Binary (v2)
/// snapshots carry their own container version
/// ([`codec::BINARY_VERSION`]).
pub const SNAPSHOT_VERSION: u64 = 1;

/// On-disk encoding of a snapshot. Both encodings carry the identical
/// logical envelope and restore bit-identically; binary is ~3–4× smaller
/// and faster to capture (see `benches/snapshot.rs`), JSON is greppable
/// and frozen as format v1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SnapshotFormat {
    /// Format v1: one JSON document (`{"magic":"FDMSNAP","version":1,...}`).
    Json,
    /// Format v2: framed little-endian binary with per-section CRC32
    /// (see [`codec`]).
    #[default]
    Binary,
}

impl SnapshotFormat {
    /// Parses the protocol/CLI spelling (`json` | `bin` | `binary`).
    pub fn parse(text: &str) -> std::result::Result<SnapshotFormat, String> {
        match text {
            "json" => Ok(SnapshotFormat::Json),
            "bin" | "binary" => Ok(SnapshotFormat::Binary),
            other => Err(format!(
                "unknown snapshot format `{other}` (expected json or bin)"
            )),
        }
    }

    /// The canonical spelling (`json` / `bin`).
    pub fn name(&self) -> &'static str {
        match self {
            SnapshotFormat::Json => "json",
            SnapshotFormat::Binary => "bin",
        }
    }
}

/// The load-bearing configuration of a snapshot, stored in the envelope so
/// compatibility can be checked without decoding the state.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotParams {
    /// Algorithm tag: `unconstrained`, `sfdm1`, `sfdm2`, `sliding`, or
    /// `sharded:<inner>`.
    pub algorithm: String,
    /// Point dimensionality observed so far; `0` when no element has
    /// arrived yet (any dimension is still acceptable).
    pub dim: usize,
    /// Guess-ladder accuracy `ε`.
    pub epsilon: f64,
    /// Distance metric.
    pub metric: Metric,
    /// Distance bounds the guess ladder was built from.
    pub bounds: DistanceBounds,
    /// Per-group quotas; empty for the unconstrained algorithm.
    pub quotas: Vec<usize>,
    /// Solution size `k` (`Σ quotas` for the fair algorithms).
    pub k: usize,
    /// Shard count; `1` for unsharded summaries.
    pub shards: usize,
    /// Sliding-window size `W` in elements; `0` for unwindowed summaries.
    pub window: usize,
}

// Hand-written (rather than derived) so the `window` field is **omitted
// when zero**: every pre-sliding snapshot ever written stays byte-identical
// under re-encode (the golden fixtures pin this), and those documents
// deserialize with the implied `window = 0`.
impl Serialize for SnapshotParams {
    fn to_value(&self) -> Value {
        let mut map = serde::Map::new();
        map.insert("algorithm".to_string(), self.algorithm.to_value());
        map.insert("dim".to_string(), self.dim.to_value());
        map.insert("epsilon".to_string(), self.epsilon.to_value());
        map.insert("metric".to_string(), self.metric.to_value());
        map.insert("bounds".to_string(), self.bounds.to_value());
        map.insert("quotas".to_string(), self.quotas.to_value());
        map.insert("k".to_string(), self.k.to_value());
        map.insert("shards".to_string(), self.shards.to_value());
        if self.window != 0 {
            map.insert("window".to_string(), self.window.to_value());
        }
        Value::Object(map)
    }
}

impl Deserialize for SnapshotParams {
    fn from_value(value: &Value) -> std::result::Result<Self, serde::DeError> {
        fn req<T: Deserialize>(value: &Value, key: &str) -> std::result::Result<T, serde::DeError> {
            let field = value
                .get(key)
                .ok_or_else(|| serde::DeError::custom(format!("missing field `{key}`")))?;
            T::from_value(field)
        }
        Ok(SnapshotParams {
            algorithm: req(value, "algorithm")?,
            dim: req(value, "dim")?,
            epsilon: req(value, "epsilon")?,
            metric: req(value, "metric")?,
            bounds: req(value, "bounds")?,
            quotas: req(value, "quotas")?,
            k: req(value, "k")?,
            shards: req(value, "shards")?,
            window: match value.get("window") {
                Some(v) => usize::from_value(v)?,
                None => 0,
            },
        })
    }
}

impl SnapshotParams {
    /// Checks that a snapshot with these parameters can be restored into a
    /// deployment expecting `live`, reporting the first mismatch as
    /// [`FdmError::IncompatibleSnapshot`].
    ///
    /// `dim = 0` on either side is a wildcard: a stream that has not seen
    /// an element yet is compatible with any dimension.
    pub fn ensure_compatible(&self, live: &SnapshotParams) -> Result<()> {
        let fail = |what: &str, snap: String, want: String| {
            Err(FdmError::IncompatibleSnapshot {
                detail: format!("{what}: snapshot has {snap}, deployment expects {want}"),
            })
        };
        if self.algorithm != live.algorithm {
            return fail(
                "algorithm",
                format!("`{}`", self.algorithm),
                format!("`{}`", live.algorithm),
            );
        }
        if self.dim != 0 && live.dim != 0 && self.dim != live.dim {
            return fail("dimension", self.dim.to_string(), live.dim.to_string());
        }
        if self.epsilon != live.epsilon {
            return fail(
                "epsilon",
                self.epsilon.to_string(),
                live.epsilon.to_string(),
            );
        }
        if self.metric != live.metric {
            return fail(
                "metric",
                format!("{:?}", self.metric),
                format!("{:?}", live.metric),
            );
        }
        if self.bounds != live.bounds {
            return fail(
                "distance bounds",
                format!("[{}, {}]", self.bounds.lower, self.bounds.upper),
                format!("[{}, {}]", live.bounds.lower, live.bounds.upper),
            );
        }
        if self.quotas != live.quotas {
            return fail(
                "group quotas",
                format!("{:?}", self.quotas),
                format!("{:?}", live.quotas),
            );
        }
        if self.k != live.k {
            return fail("solution size k", self.k.to_string(), live.k.to_string());
        }
        if self.shards != live.shards {
            return fail(
                "shard count",
                self.shards.to_string(),
                live.shards.to_string(),
            );
        }
        if self.window != live.window {
            return fail(
                "sliding window",
                self.window.to_string(),
                live.window.to_string(),
            );
        }
        Ok(())
    }
}

/// A versioned, self-describing checkpoint of one streaming summary.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Envelope parameters (see [`SnapshotParams`]).
    pub params: SnapshotParams,
    /// Algorithm-specific state tree.
    pub state: Value,
}

impl Snapshot {
    /// Serializes the snapshot (envelope + state) to compact JSON.
    pub fn to_json(&self) -> String {
        let mut map = serde::Map::new();
        map.insert("magic".to_string(), Value::String(SNAPSHOT_MAGIC.into()));
        map.insert(
            "version".to_string(),
            Serialize::to_value(&SNAPSHOT_VERSION),
        );
        map.insert("params".to_string(), self.params.to_value());
        map.insert("state".to_string(), self.state.clone());
        serde_json::to_string(&Value::Object(map)).expect("value trees always serialize")
    }

    /// Parses a snapshot document, validating magic and format version.
    pub fn from_json(text: &str) -> Result<Snapshot> {
        let value = serde_json::parse_value(text).map_err(|e| FdmError::CorruptSnapshot {
            detail: format!("invalid JSON: {e}"),
        })?;
        let magic = value.get("magic").and_then(Value::as_str).ok_or_else(|| {
            FdmError::CorruptSnapshot {
                detail: "missing `magic` marker".to_string(),
            }
        })?;
        if magic != SNAPSHOT_MAGIC {
            return Err(FdmError::CorruptSnapshot {
                detail: format!("bad magic `{magic}` (expected `{SNAPSHOT_MAGIC}`)"),
            });
        }
        let version = value
            .get("version")
            .and_then(Value::as_u64)
            .ok_or_else(|| FdmError::CorruptSnapshot {
                detail: "missing `version` field".to_string(),
            })?;
        if version != SNAPSHOT_VERSION {
            return Err(FdmError::UnsupportedSnapshotVersion {
                found: version,
                supported: SNAPSHOT_VERSION,
            });
        }
        let params_value = value
            .get("params")
            .ok_or_else(|| FdmError::CorruptSnapshot {
                detail: "missing `params` object".to_string(),
            })?;
        let params =
            SnapshotParams::from_value(params_value).map_err(|e| FdmError::CorruptSnapshot {
                detail: format!("invalid `params`: {e}"),
            })?;
        let state = value
            .get("state")
            .cloned()
            .ok_or_else(|| FdmError::CorruptSnapshot {
                detail: "missing `state` object".to_string(),
            })?;
        Ok(Snapshot { params, state })
    }

    /// Serializes the snapshot in the requested format: v1 JSON text (with
    /// trailing newline) or the v2 binary frame.
    pub fn to_bytes(&self, format: SnapshotFormat) -> Vec<u8> {
        match format {
            SnapshotFormat::Json => {
                let mut text = self.to_json();
                text.push('\n');
                text.into_bytes()
            }
            SnapshotFormat::Binary => codec::encode_snapshot(self),
        }
    }

    /// Parses a snapshot from bytes, sniffing the format: the v2 binary
    /// magic selects the binary decoder, anything else is treated as v1
    /// JSON. Both paths validate magic and version and report every
    /// failure as a typed error.
    pub fn from_bytes(bytes: &[u8]) -> Result<Snapshot> {
        if bytes.starts_with(&codec::BINARY_MAGIC) {
            return codec::decode_snapshot(bytes);
        }
        if bytes.starts_with(&delta::DELTA_MAGIC) {
            return Err(FdmError::CorruptSnapshot {
                detail: "file is a delta snapshot, not a full snapshot \
                         (apply it to its base instead)"
                    .to_string(),
            });
        }
        let text = std::str::from_utf8(bytes).map_err(|e| FdmError::CorruptSnapshot {
            detail: format!("snapshot is neither binary (no FDMSNAP2 magic) nor UTF-8 JSON: {e}"),
        })?;
        Snapshot::from_json(text)
    }

    /// Writes the snapshot to a file as v1 JSON (see
    /// [`Snapshot::write_to_file_format`] for the format switch).
    pub fn write_to_file(&self, path: impl AsRef<Path>) -> Result<()> {
        self.write_to_file_format(path, SnapshotFormat::Json)
    }

    /// Writes the snapshot to a file in the given format.
    ///
    /// The write is atomic and durable: the document goes to a sibling
    /// `.tmp` file, is fsynced, and is renamed into place (with a
    /// best-effort directory fsync), so neither a crash mid-write nor a
    /// power loss across the rename can destroy the previous checkpoint —
    /// a half-written snapshot would otherwise brick crash recovery, the
    /// exact failure snapshots exist to survive.
    pub fn write_to_file_format(
        &self,
        path: impl AsRef<Path>,
        format: SnapshotFormat,
    ) -> Result<()> {
        write_bytes_atomic(path.as_ref(), &self.to_bytes(format))
    }

    /// Reads and parses a snapshot file (either format, sniffed).
    pub fn read_from_file(path: impl AsRef<Path>) -> Result<Snapshot> {
        let path = path.as_ref();
        let bytes = std::fs::read(path).map_err(|e| FdmError::SnapshotIo {
            detail: format!("read {}: {e}", path.display()),
        })?;
        Snapshot::from_bytes(&bytes)
    }
}

/// Atomic durable file write shared by full snapshots and deltas (and by
/// `fdm-serve`'s checkpoint writer, which pre-encodes so it can report
/// checkpoint sizes): write to a sibling temp file, fsync, rename into
/// place, best-effort fsync of the directory entry.
///
/// The temp name carries the pid and a process-wide counter so concurrent
/// writers of the **same** destination (e.g. two sessions exporting one
/// stream to one path) each stage through their own file: every rename
/// promotes one complete document — last writer wins — instead of the two
/// interleaving inside a shared `.tmp`.
pub fn write_bytes_atomic(path: &Path, bytes: &[u8]) -> Result<()> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static WRITE_SEQ: AtomicU64 = AtomicU64::new(0);
    let io_err = |what: &str, p: &Path, e: std::io::Error| FdmError::SnapshotIo {
        detail: format!("{what} {}: {e}", p.display()),
    };
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(
        ".tmp.{}.{}",
        std::process::id(),
        WRITE_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let tmp = std::path::PathBuf::from(tmp);
    {
        use std::io::Write as _;
        let mut file = std::fs::File::create(&tmp).map_err(|e| io_err("create", &tmp, e))?;
        file.write_all(bytes)
            .map_err(|e| io_err("write", &tmp, e))?;
        // Data must be on disk before the rename becomes visible;
        // otherwise the journal can persist the rename but not the
        // contents, leaving a valid-looking empty snapshot.
        file.sync_all().map_err(|e| io_err("sync", &tmp, e))?;
    }
    std::fs::rename(&tmp, path).map_err(|e| FdmError::SnapshotIo {
        detail: format!("rename {} to {}: {e}", tmp.display(), path.display()),
    })?;
    // Persist the rename itself (directory entry). Best-effort: not
    // every platform/filesystem supports fsync on directories.
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Ok(dir_file) = std::fs::File::open(dir) {
            let _ = dir_file.sync_all();
        }
    }
    Ok(())
}

/// A streaming summary that can checkpoint itself into a [`Snapshot`] and
/// be rebuilt from one.
///
/// The contract: `restore(&alg.snapshot())` yields an instance whose
/// observable behavior — every future insert decision, `finalize`, space
/// accounting — is bit-identical to `alg`'s.
pub trait Snapshottable: Sized {
    /// The algorithm tag written into the envelope (e.g. `sfdm2`).
    fn algorithm_tag() -> String;

    /// The envelope parameters describing this instance's configuration.
    fn snapshot_params(&self) -> SnapshotParams;

    /// Serializes the full streaming state to a value tree.
    fn snapshot_state(&self) -> Value;

    /// Rebuilds an instance from a state tree, validating it.
    fn restore_state(state: &Value) -> Result<Self>;

    /// Captures a complete [`Snapshot`] of this instance.
    fn snapshot(&self) -> Snapshot {
        Snapshot {
            params: self.snapshot_params(),
            state: self.snapshot_state(),
        }
    }

    /// An opaque cursor marking this instance's current capture position
    /// (arena lengths, per-lane member counts, arrival counters) — the
    /// dirty-set high-water mark a later [`Snapshottable::state_patch_since`]
    /// measures from. The default (no dirty tracking) is [`Value::Null`].
    fn capture_cursor(&self) -> Value {
        Value::Null
    }

    /// The structural changes to [`Snapshottable::snapshot_state`] since
    /// `cursor` was taken, as a [`StatePatch`] — `O(changed)`, never a
    /// walk of the full state. `None` means the changes cannot be
    /// described incrementally (unrecognized cursor, a structural rewrite
    /// like the sliding window's rotation, or no dirty tracking at all);
    /// the caller falls back to a full capture. Implementations may only
    /// return `Some` when the patch provably reproduces the full-tree
    /// diff (pinned by proptest in `tests/persist_codec.rs`).
    fn state_patch_since(&self, cursor: &Value) -> Option<StatePatch> {
        let _ = cursor;
        None
    }

    /// Restores an instance from a snapshot, rejecting wrong-algorithm
    /// envelopes and envelopes whose parameters disagree with the decoded
    /// state.
    fn restore(snapshot: &Snapshot) -> Result<Self> {
        let expected = Self::algorithm_tag();
        if snapshot.params.algorithm != expected {
            return Err(FdmError::IncompatibleSnapshot {
                detail: format!(
                    "snapshot holds algorithm `{}`, expected `{expected}`",
                    snapshot.params.algorithm
                ),
            });
        }
        let restored = Self::restore_state(&snapshot.state)?;
        let live = restored.snapshot_params();
        if live != snapshot.params {
            return Err(FdmError::IncompatibleSnapshot {
                detail: format!(
                    "envelope parameters disagree with the decoded state \
                     (envelope {:?}, state {:?})",
                    snapshot.params, live
                ),
            });
        }
        Ok(restored)
    }
}

/// Decodes one field of a state tree, mapping absence and decode failures
/// to [`FdmError::CorruptSnapshot`].
pub(crate) fn field<T: Deserialize>(state: &Value, key: &str) -> Result<T> {
    let value = state.get(key).ok_or_else(|| FdmError::CorruptSnapshot {
        detail: format!("missing state field `{key}`"),
    })?;
    T::from_value(value).map_err(|e| FdmError::CorruptSnapshot {
        detail: format!("state field `{key}`: {e}"),
    })
}

/// One candidate ladder's persisted form: a digest of the guesses and, per
/// guess, the member ids into the shared arena.
///
/// Compatibility contract: the v1 *reader* stays backward compatible
/// forever (every document ever written keeps restoring — pinned by the
/// legacy golden fixture), while the v1 *writer* may extend the state
/// schema additively, as this digest did. Consequence: rolling back to a
/// build older than a schema extension may require capturing a fresh
/// snapshot with the old build rather than reading the new file.
///
/// The guess thresholds are redundant with the configuration (the ladder
/// is rebuilt from `bounds`/`epsilon` on restore) and serve purely as an
/// integrity check, so they persist as a CRC32 over the `µ` bit patterns
/// (`mu_crc`) rather than a full-precision float list — a state tree
/// whose digest disagrees with the ladder its own configuration implies
/// is rejected, at 4 bytes per ladder instead of 8 per lane. Documents
/// written before the digest existed carry a `mus` array instead; those
/// restore through the original bit-exact per-lane comparison.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct LadderLanes {
    /// CRC32 over the lane thresholds' `f64` bit patterns.
    mu_crc: Option<u32>,
    /// Legacy form: guess value `µ` per lane (still readable).
    mus: Option<Vec<f64>>,
    /// Member ids per lane (indices into the snapshot's arena).
    members: Vec<Vec<u32>>,
}

/// CRC32 digest of a guess ladder's thresholds (bit patterns, in lane
/// order).
fn mu_digest(mus: impl Iterator<Item = f64>) -> u32 {
    let mut bytes = Vec::new();
    for mu in mus {
        bytes.extend_from_slice(&mu.to_bits().to_le_bytes());
    }
    codec::crc32(&bytes)
}

impl Serialize for LadderLanes {
    fn to_value(&self) -> Value {
        let mut map = serde::Map::new();
        match (&self.mu_crc, &self.mus) {
            (Some(crc), _) => {
                map.insert("mu_crc".to_string(), Serialize::to_value(crc));
            }
            (None, mus) => {
                map.insert(
                    "mus".to_string(),
                    Serialize::to_value(&mus.clone().unwrap_or_default()),
                );
            }
        }
        map.insert("members".to_string(), Serialize::to_value(&self.members));
        Value::Object(map)
    }
}

impl Deserialize for LadderLanes {
    fn from_value(value: &Value) -> std::result::Result<Self, serde::DeError> {
        let members = value
            .get("members")
            .ok_or_else(|| serde::DeError::custom("missing field `members`"))
            .and_then(<Vec<Vec<u32>> as Deserialize>::from_value)?;
        let mu_crc = match value.get("mu_crc") {
            Some(v) => Some(<u32 as Deserialize>::from_value(v)?),
            None => None,
        };
        let mus = match value.get("mus") {
            Some(v) => Some(<Vec<f64> as Deserialize>::from_value(v)?),
            None => None,
        };
        if mu_crc.is_none() && mus.is_none() {
            return Err(serde::DeError::custom(
                "ladder lanes need either `mu_crc` or the legacy `mus`",
            ));
        }
        Ok(LadderLanes {
            mu_crc,
            mus,
            members,
        })
    }
}

/// Captures the persisted form of a candidate ladder.
pub(crate) fn lanes_of(candidates: &[Candidate]) -> LadderLanes {
    LadderLanes {
        mu_crc: Some(mu_digest(candidates.iter().map(Candidate::mu))),
        mus: None,
        members: candidates
            .iter()
            .map(|c| c.members().iter().map(|id| id.0).collect())
            .collect(),
    }
}

/// Fills freshly-built ladder candidates from their persisted form,
/// validating lane count, thresholds (bit-exact), capacities, and member
/// ids against the restored arena.
pub(crate) fn restore_lanes(
    candidates: &mut [Candidate],
    lanes: &LadderLanes,
    store_len: usize,
    what: &str,
) -> Result<()> {
    let mu_lanes = lanes.mus.as_ref().map_or(lanes.members.len(), Vec::len);
    if mu_lanes != candidates.len() || lanes.members.len() != candidates.len() {
        return Err(FdmError::IncompatibleSnapshot {
            detail: format!(
                "{what}: snapshot has {} lanes, configuration implies {}",
                mu_lanes.max(lanes.members.len()),
                candidates.len()
            ),
        });
    }
    if let Some(stored) = lanes.mu_crc {
        let implied = mu_digest(candidates.iter().map(Candidate::mu));
        if stored != implied {
            return Err(FdmError::IncompatibleSnapshot {
                detail: format!(
                    "{what}: snapshot ladder digest {stored:#010x} disagrees with the \
                     digest {implied:#010x} implied by the configuration"
                ),
            });
        }
    }
    for (lane, (candidate, members)) in candidates.iter_mut().zip(&lanes.members).enumerate() {
        if let Some(mus) = &lanes.mus {
            let mu = mus[lane];
            if mu.to_bits() != candidate.mu().to_bits() {
                return Err(FdmError::IncompatibleSnapshot {
                    detail: format!(
                        "{what} lane {lane}: snapshot guess µ = {mu} disagrees with \
                         the ladder value {} implied by the configuration",
                        candidate.mu()
                    ),
                });
            }
        }
        if members.len() > candidate.capacity() {
            return Err(FdmError::CorruptSnapshot {
                detail: format!(
                    "{what} lane {lane}: {} members exceed capacity {}",
                    members.len(),
                    candidate.capacity()
                ),
            });
        }
        if let Some(&bad) = members.iter().find(|&&id| (id as usize) >= store_len) {
            return Err(FdmError::CorruptSnapshot {
                detail: format!(
                    "{what} lane {lane}: member id {bad} is outside the stored \
                     arena of {store_len} points"
                ),
            });
        }
        candidate.restore_members(members.iter().map(|&id| PointId(id)).collect());
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Dirty-set capture helpers (shared by the summaries' `state_patch_since`)
// ---------------------------------------------------------------------------

/// Capture cursor for a candidate ladder: the member count per lane
/// (members are append-only, so a count is a complete high-water mark).
pub(crate) fn lanes_cursor(candidates: &[Candidate]) -> Value {
    Value::Array(
        candidates
            .iter()
            .map(|c| Value::Number(c.members().len() as f64))
            .collect(),
    )
}

/// Dirty-set patch for a ladder serialized via [`lanes_of`]: the member-id
/// suffix appended to each lane since `cursor`. The `mu_crc` digest is a
/// pure function of the configuration, so it is never mentioned (= keep).
pub(crate) fn lanes_patch_since(candidates: &[Candidate], cursor: &Value) -> Option<StatePatch> {
    let counts = cursor.as_array()?;
    if counts.len() != candidates.len() {
        return None;
    }
    let mut lanes = Vec::with_capacity(candidates.len());
    for (candidate, old) in candidates.iter().zip(counts) {
        let old = old.as_u64()? as usize;
        let members = candidate.members();
        if old > members.len() {
            return None;
        }
        if old == members.len() {
            lanes.push(StatePatch::Keep);
        } else {
            lanes.push(StatePatch::Append(
                members[old..]
                    .iter()
                    .map(|id| Value::Number(f64::from(id.0)))
                    .collect(),
            ));
        }
    }
    Some(StatePatch::Object(vec![(
        "members".to_string(),
        StatePatch::Elements(lanes),
    )]))
}

/// Capture cursor for the shared arena: row count plus raw coordinate
/// count (both append-only; the arena is only ever *replaced* while
/// empty, which the dimension replace below covers).
pub(crate) fn store_cursor(store: &PointStore) -> Value {
    let mut map = serde::Map::new();
    map.insert("len".to_string(), Value::Number(store.len() as f64));
    map.insert(
        "coords".to_string(),
        Value::Number(store.coords_raw().len() as f64),
    );
    Value::Object(map)
}

/// Dirty-set patch for the arena since `cursor`: the appended
/// id/group/coordinate suffixes, plus the dimension (whose replace lowers
/// to a keep whenever it is unchanged).
pub(crate) fn store_patch_since(store: &PointStore, cursor: &Value) -> Option<StatePatch> {
    let old_len = cursor.get("len")?.as_u64()? as usize;
    let old_coords = cursor.get("coords")?.as_u64()? as usize;
    let ids = store.external_ids_raw();
    let groups = store.groups_raw();
    let coords = store.coords_raw();
    if old_len > ids.len() || old_coords > coords.len() {
        return None;
    }
    Some(StatePatch::Object(vec![
        (
            "dim".to_string(),
            StatePatch::Replace(Value::Number(store.dim() as f64)),
        ),
        (
            "external_ids".to_string(),
            StatePatch::Append(
                ids[old_len..]
                    .iter()
                    .map(|&v| Value::Number(v as f64))
                    .collect(),
            ),
        ),
        (
            "groups".to_string(),
            StatePatch::Append(
                groups[old_len..]
                    .iter()
                    .map(|&v| Value::Number(f64::from(v)))
                    .collect(),
            ),
        ),
        (
            "coords".to_string(),
            StatePatch::Append(
                coords[old_coords..]
                    .iter()
                    .map(|&v| Value::Number(v))
                    .collect(),
            ),
        ),
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(tag: &str) -> SnapshotParams {
        SnapshotParams {
            algorithm: tag.to_string(),
            dim: 2,
            epsilon: 0.1,
            metric: Metric::Euclidean,
            bounds: DistanceBounds::new(1.0, 10.0).unwrap(),
            quotas: vec![2, 2],
            k: 4,
            shards: 1,
            window: 0,
        }
    }

    #[test]
    fn envelope_round_trips() {
        let snap = Snapshot {
            params: params("sfdm2"),
            state: Value::String("payload".into()),
        };
        let back = Snapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(snap, back);
    }

    #[test]
    fn bad_magic_and_version_are_typed_errors() {
        let snap = Snapshot {
            params: params("sfdm2"),
            state: Value::Null,
        };
        let good = snap.to_json();
        let bad_magic = good.replace("FDMSNAP", "NOTSNAP");
        assert!(matches!(
            Snapshot::from_json(&bad_magic),
            Err(FdmError::CorruptSnapshot { .. })
        ));
        let bad_version = good.replace("\"version\":1", "\"version\":99");
        assert_eq!(
            Snapshot::from_json(&bad_version),
            Err(FdmError::UnsupportedSnapshotVersion {
                found: 99,
                supported: SNAPSHOT_VERSION
            })
        );
        assert!(matches!(
            Snapshot::from_json("{\"truncated\":"),
            Err(FdmError::CorruptSnapshot { .. })
        ));
    }

    #[test]
    fn compatibility_check_reports_first_mismatch() {
        let a = params("sfdm2");
        assert!(a.ensure_compatible(&a).is_ok());

        let mut b = a.clone();
        b.algorithm = "sfdm1".into();
        let err = a.ensure_compatible(&b).unwrap_err();
        assert!(err.to_string().contains("algorithm"), "{err}");

        let mut b = a.clone();
        b.dim = 7;
        assert!(a.ensure_compatible(&b).is_err());
        b.dim = 0; // wildcard: no element seen yet
        assert!(a.ensure_compatible(&b).is_ok());

        let mut b = a.clone();
        b.quotas = vec![3, 1];
        let err = a.ensure_compatible(&b).unwrap_err();
        assert!(err.to_string().contains("quotas"), "{err}");
    }

    #[test]
    fn both_formats_round_trip_through_bytes() {
        let snap = Snapshot {
            params: params("sfdm2"),
            state: Value::Array(vec![
                Value::Number(0.1),
                Value::Number(-0.0),
                Value::String("x".into()),
            ]),
        };
        for format in [SnapshotFormat::Json, SnapshotFormat::Binary] {
            let bytes = snap.to_bytes(format);
            let back = Snapshot::from_bytes(&bytes).unwrap();
            assert_eq!(snap, back, "{format:?}");
        }
        // The binary frame is sniffed by magic, JSON by elimination.
        assert!(snap
            .to_bytes(SnapshotFormat::Binary)
            .starts_with(b"FDMSNAP2"));
        assert!(snap.to_bytes(SnapshotFormat::Json).starts_with(b"{"));
    }

    #[test]
    fn delta_files_are_not_full_snapshots() {
        let snap = Snapshot {
            params: params("sfdm2"),
            state: Value::Number(1.0),
        };
        let newer = Snapshot {
            params: params("sfdm2"),
            state: Value::Number(2.0),
        };
        let delta = SnapshotDelta::between(&snap, &newer).unwrap();
        let err = Snapshot::from_bytes(&delta.to_bytes()).unwrap_err();
        assert!(matches!(err, FdmError::CorruptSnapshot { .. }), "{err}");
    }

    #[test]
    fn f64_text_round_trip_is_bit_exact() {
        for x in [0.1, 1.0 / 3.0, f64::MIN_POSITIVE, 1e300, -0.0, 2.5e-17] {
            let text = serde_json::to_string(&x).unwrap();
            let back: f64 = serde_json::from_str(&text).unwrap();
            assert_eq!(x.to_bits(), back.to_bits(), "{text}");
        }
    }
}
