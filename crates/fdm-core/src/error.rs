//! Error types for the `fdm-core` crate.

use std::fmt;

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, FdmError>;

/// Errors raised by dataset construction, constraint validation, and the
/// diversity-maximization algorithms.
///
/// All constructors in this crate validate their inputs and report problems
/// through this type; the algorithms themselves are panic-free on inputs that
/// passed validation.
#[derive(Debug, Clone, PartialEq)]
pub enum FdmError {
    /// A dimension mismatch between points, or an empty point.
    DimensionMismatch {
        /// Expected dimensionality.
        expected: usize,
        /// Observed dimensionality.
        found: usize,
    },
    /// Group label out of range, or group/point counts disagree.
    InvalidGroup {
        /// The offending group label.
        group: usize,
        /// Number of groups the container was declared with.
        num_groups: usize,
    },
    /// A fairness constraint with no groups or a zero quota.
    EmptyConstraint,
    /// The requested solution size exceeds the available elements of some
    /// group, so no fair solution exists.
    InfeasibleConstraint {
        /// Group whose quota cannot be met.
        group: usize,
        /// Requested number of elements.
        requested: usize,
        /// Available number of elements.
        available: usize,
    },
    /// The solution size `k` must be at least 2 for `div(S)` to be defined,
    /// or at least 1 per group.
    SolutionSizeTooSmall {
        /// Requested solution size.
        k: usize,
    },
    /// `epsilon` must lie strictly inside `(0, 1)`.
    InvalidEpsilon {
        /// The offending value.
        epsilon: f64,
    },
    /// Distance bounds must satisfy `0 < lower <= upper` and be finite.
    InvalidDistanceBounds {
        /// Lower bound supplied.
        lower: f64,
        /// Upper bound supplied.
        upper: f64,
    },
    /// The dataset is empty or has fewer elements than required.
    NotEnoughElements {
        /// Elements required.
        required: usize,
        /// Elements available.
        available: usize,
    },
    /// A point coordinate was NaN or infinite.
    NonFiniteCoordinate,
    /// A streaming algorithm was asked to finalize but no candidate reached
    /// the required size; the stream was too small or the distance bounds
    /// were wrong.
    NoFeasibleCandidate,
    /// Minkowski metric requires `p >= 1`.
    InvalidMinkowskiOrder {
        /// The offending order.
        p: f64,
    },
    /// A sharded stream needs at least one shard.
    InvalidShardCount,
    /// A snapshot file could not be read or written.
    SnapshotIo {
        /// Human-readable description (path + OS error).
        detail: String,
    },
    /// A snapshot document is malformed: bad magic, truncated/invalid JSON,
    /// missing fields, or internally inconsistent state (e.g. a candidate
    /// member index past the end of the stored arena).
    CorruptSnapshot {
        /// What failed to parse or validate.
        detail: String,
    },
    /// The snapshot was written by an unknown (newer) format version.
    UnsupportedSnapshotVersion {
        /// Version found in the file.
        found: u64,
        /// Highest version this build understands.
        supported: u64,
    },
    /// The snapshot is well-formed but does not match the configuration it
    /// is being restored against: different algorithm, dimension, `ε`,
    /// metric, distance bounds, group count/quotas, or shard count.
    IncompatibleSnapshot {
        /// Which parameter disagreed, with both values.
        detail: String,
    },
}

impl fmt::Display for FdmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FdmError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            FdmError::InvalidGroup { group, num_groups } => {
                write!(f, "group label {group} out of range for {num_groups} groups")
            }
            FdmError::EmptyConstraint => {
                write!(f, "fairness constraint must have at least one group with a positive quota")
            }
            FdmError::InfeasibleConstraint { group, requested, available } => write!(
                f,
                "infeasible constraint: group {group} has {available} elements but {requested} requested"
            ),
            FdmError::SolutionSizeTooSmall { k } => {
                write!(f, "solution size {k} too small: diversity needs k >= 2")
            }
            FdmError::InvalidEpsilon { epsilon } => {
                write!(f, "epsilon must be in (0, 1), got {epsilon}")
            }
            FdmError::InvalidDistanceBounds { lower, upper } => write!(
                f,
                "distance bounds must satisfy 0 < lower <= upper (finite), got [{lower}, {upper}]"
            ),
            FdmError::NotEnoughElements { required, available } => {
                write!(f, "not enough elements: need {required}, have {available}")
            }
            FdmError::NonFiniteCoordinate => write!(f, "point contains NaN or infinite coordinate"),
            FdmError::NoFeasibleCandidate => write!(
                f,
                "no candidate reached the required size; check distance bounds and stream length"
            ),
            FdmError::InvalidMinkowskiOrder { p } => {
                write!(f, "Minkowski order must satisfy p >= 1, got {p}")
            }
            FdmError::InvalidShardCount => {
                write!(f, "sharded ingestion requires at least one shard")
            }
            FdmError::SnapshotIo { detail } => write!(f, "snapshot I/O error: {detail}"),
            FdmError::CorruptSnapshot { detail } => write!(f, "corrupt snapshot: {detail}"),
            FdmError::UnsupportedSnapshotVersion { found, supported } => write!(
                f,
                "unsupported snapshot version {found} (this build supports up to {supported})"
            ),
            FdmError::IncompatibleSnapshot { detail } => {
                write!(f, "incompatible snapshot: {detail}")
            }
        }
    }
}

impl std::error::Error for FdmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(FdmError, &str)> = vec![
            (
                FdmError::DimensionMismatch {
                    expected: 3,
                    found: 2,
                },
                "dimension mismatch",
            ),
            (
                FdmError::InvalidGroup {
                    group: 5,
                    num_groups: 2,
                },
                "out of range",
            ),
            (FdmError::EmptyConstraint, "at least one group"),
            (
                FdmError::InfeasibleConstraint {
                    group: 1,
                    requested: 4,
                    available: 2,
                },
                "infeasible",
            ),
            (FdmError::SolutionSizeTooSmall { k: 1 }, "too small"),
            (FdmError::InvalidEpsilon { epsilon: 1.5 }, "epsilon"),
            (
                FdmError::InvalidDistanceBounds {
                    lower: -1.0,
                    upper: 2.0,
                },
                "distance bounds",
            ),
            (
                FdmError::NotEnoughElements {
                    required: 10,
                    available: 3,
                },
                "not enough",
            ),
            (FdmError::NonFiniteCoordinate, "NaN"),
            (FdmError::NoFeasibleCandidate, "no candidate"),
            (FdmError::InvalidMinkowskiOrder { p: 0.5 }, "Minkowski"),
            (FdmError::InvalidShardCount, "at least one shard"),
            (
                FdmError::SnapshotIo {
                    detail: "open /tmp/x.snap: no such file".into(),
                },
                "snapshot i/o",
            ),
            (
                FdmError::CorruptSnapshot {
                    detail: "bad magic".into(),
                },
                "corrupt snapshot",
            ),
            (
                FdmError::UnsupportedSnapshotVersion {
                    found: 9,
                    supported: 1,
                },
                "unsupported snapshot version 9",
            ),
            (
                FdmError::IncompatibleSnapshot {
                    detail: "dimension 3 != 2".into(),
                },
                "incompatible snapshot",
            ),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(
                msg.to_lowercase().contains(&needle.to_lowercase()),
                "message {msg:?} should contain {needle:?}"
            );
        }
    }

    #[test]
    fn errors_are_cloneable_and_comparable() {
        let a = FdmError::SolutionSizeTooSmall { k: 1 };
        let b = a.clone();
        assert_eq!(a, b);
        assert_ne!(a, FdmError::NonFiniteCoordinate);
    }

    #[test]
    fn error_trait_object_works() {
        let err: Box<dyn std::error::Error> = Box::new(FdmError::EmptyConstraint);
        assert!(err.to_string().contains("constraint"));
    }
}
