//! The max–min diversity objective `div(S)` and its upper bounds.
//!
//! `div(S) = min_{x≠y ∈ S} d(x, y)` (§III-A). The paper estimates an upper
//! bound on the fair optimum as `2 · div(GMM(X, k)) ≥ OPT ≥ OPT_f`, using
//! the fact that GMM is a `1/2`-approximation for the unconstrained problem;
//! [`diversity_upper_bound`] packages that estimate.

use crate::dataset::Dataset;
use crate::metric::Metric;
use crate::offline::gmm::gmm;
use crate::point::{PointId, PointStore};

/// Minimum pairwise distance among a set of points given as slices.
///
/// Returns `f64::INFINITY` for fewer than two points (the empty minimum),
/// matching the convention that `div` is monotonically non-increasing under
/// insertion.
pub fn diversity_of_points<P: AsRef<[f64]>>(points: &[P], metric: Metric) -> f64 {
    let mut best = f64::INFINITY;
    for (i, a) in points.iter().enumerate() {
        for b in &points[i + 1..] {
            let d = metric.dist(a.as_ref(), b.as_ref());
            if d < best {
                best = d;
            }
        }
    }
    best
}

/// `div(S)` for a set of arena ids: all pairwise comparisons run in proxy
/// space over contiguous rows (with cached norms), and only the final
/// minimum is mapped back to a distance.
///
/// Returns `f64::INFINITY` for fewer than two ids.
pub fn diversity_of_ids(store: &PointStore, ids: &[PointId], metric: Metric) -> f64 {
    let mut best = f64::INFINITY;
    for (i, &a) in ids.iter().enumerate() {
        for &b in &ids[i + 1..] {
            let p = metric.proxy_with_sqrt_norms(
                store.row(a),
                store.row(b),
                store.norm(a),
                store.norm(b),
            );
            if p < best {
                best = p;
            }
        }
    }
    metric.dist_from_proxy(best)
}

/// `div(S)` for a subset of dataset rows.
///
/// Returns `f64::INFINITY` for `|S| < 2`.
pub fn diversity(dataset: &Dataset, subset: &[usize]) -> f64 {
    let mut best = f64::INFINITY;
    for (a, &i) in subset.iter().enumerate() {
        for &j in &subset[a + 1..] {
            let d = dataset.dist(i, j);
            if d < best {
                best = d;
            }
        }
    }
    best
}

/// Upper bound `2 · div(GMM(X, k)) ≥ OPT ≥ OPT_f` used throughout §V to
/// normalize reported diversities.
///
/// `seed` selects GMM's start element (the paper uses an arbitrary start; we
/// make it deterministic).
pub fn diversity_upper_bound(dataset: &Dataset, k: usize, seed: u64) -> f64 {
    if dataset.len() < 2 || k < 2 {
        return f64::INFINITY;
    }
    let sol = gmm(dataset, k, seed);
    2.0 * diversity(dataset, &sol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::Metric;

    fn square_dataset() -> Dataset {
        Dataset::from_rows(
            vec![
                vec![0.0, 0.0],
                vec![1.0, 0.0],
                vec![0.0, 1.0],
                vec![1.0, 1.0],
                vec![0.5, 0.5],
            ],
            vec![0; 5],
            Metric::Euclidean,
        )
        .unwrap()
    }

    #[test]
    fn diversity_of_square_corners() {
        let d = square_dataset();
        let div = diversity(&d, &[0, 1, 2, 3]);
        assert!((div - 1.0).abs() < 1e-12);
    }

    #[test]
    fn diversity_with_center_is_smaller() {
        let d = square_dataset();
        let div = diversity(&d, &[0, 1, 2, 3, 4]);
        let expected = (0.5f64 * 0.5 + 0.5 * 0.5).sqrt();
        assert!((div - expected).abs() < 1e-12);
    }

    #[test]
    fn diversity_of_singletons_is_infinite() {
        let d = square_dataset();
        assert_eq!(diversity(&d, &[0]), f64::INFINITY);
        assert_eq!(diversity(&d, &[]), f64::INFINITY);
    }

    #[test]
    fn diversity_is_monotone_non_increasing() {
        let d = square_dataset();
        let smaller = diversity(&d, &[0, 3]);
        let larger = diversity(&d, &[0, 3, 4]);
        assert!(larger <= smaller);
    }

    #[test]
    fn point_slice_variant_matches_index_variant() {
        let d = square_dataset();
        let subset = [0usize, 1, 4];
        let points: Vec<&[f64]> = subset.iter().map(|&i| d.point(i)).collect();
        let a = diversity(&d, &subset);
        let b = diversity_of_points(&points, Metric::Euclidean);
        assert_eq!(a, b);
    }

    #[test]
    fn id_variant_matches_index_variant() {
        let d = square_dataset();
        let subset = [0usize, 2, 3, 4];
        let ids: Vec<_> = subset.iter().map(|&i| d.point_id(i)).collect();
        let a = diversity(&d, &subset);
        let b = diversity_of_ids(d.store(), &ids, Metric::Euclidean);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn upper_bound_dominates_true_optimum() {
        let d = square_dataset();
        // Exhaustive optimum for k = 3.
        let mut opt: f64 = 0.0;
        let n = d.len();
        for i in 0..n {
            for j in (i + 1)..n {
                for l in (j + 1)..n {
                    opt = opt.max(diversity(&d, &[i, j, l]));
                }
            }
        }
        let ub = diversity_upper_bound(&d, 3, 42);
        assert!(ub >= opt - 1e-12, "ub {ub} must dominate opt {opt}");
    }
}
