//! Capture marks: per-node dirty tracking for `O(changed)` delta capture.
//!
//! [`SnapshotDelta::between`] re-walks the **entire** state tree of both
//! snapshots, so the cost of every incremental checkpoint — and the
//! retained base copy it diffs against — grows with stream size. But the
//! summaries already *know* what changed: arenas and candidate member
//! lists only append, counters only move, everything else is static. A
//! [`StatePatch`] is the summary's own declaration of that shape, and a
//! [`CaptureMark`] is the persistent digest tree that turns the
//! declaration into a [`SnapshotDelta`] **byte-identical** to what the
//! full-tree diff would have produced (pinned by proptest in
//! `tests/persist_codec.rs`), without holding the state and without
//! walking it.
//!
//! The mark mirrors the state's *encoded* structure, one node per value
//! tree node, each carrying the length and CRC32 of its binary encoding:
//!
//! * scalars keep their (tiny) encoded bytes, so a `Replace` with an
//!   unchanged value collapses to a keep exactly like `bits_eq` would;
//! * all-number arrays keep running aggregates for the three dense
//!   encodings (`f64` bits, varints, bit-packed ints) so an `Append`
//!   extends the checksums by streaming only the new elements
//!   ([`codec::crc32_extend`]);
//! * generic arrays and objects re-combine their checksum from the
//!   children's in `O(children · log len)` ([`codec::crc32_combine`]),
//!   never touching the children's bytes.
//!
//! The root checksum therefore always equals [`state_crc`] of the state
//! the mark describes — the delta chain's `base_crc` comes straight off
//! the mark.
//!
//! Lowering a patch is **total or refused**: any shape the mark cannot
//! prove byte-identical to the diff (a container replacement, an
//! unexpected cursor) returns `None`, and the caller falls back to a
//! full snapshot and rebuilds the mark fresh. Correctness never depends
//! on the summary's patch being small — only the fast path does.
//! Appends that grow a bit-pack's width repack from the retained values
//! rather than refusing: capped id-style arrays cross power-of-two
//! boundaries routinely, and refusing there turned realistic incremental
//! workloads into permanent full-frame fallbacks.

use serde::{Map, Value};

use crate::persist::codec::{
    crc32, crc32_combine, crc32_extend, encode_value_to_vec, put_varint, varint_exact, varint_len,
    TAG_ARRAY, TAG_DENSE_F64, TAG_DENSE_VARINT, TAG_OBJECT, TAG_PACKED_INTS,
};

use super::{
    op, SnapshotDelta, SnapshotParams, OP_APPEND, OP_ELEMENTS, OP_KEEP, OP_OBJECT, OP_REPLACE,
};

/// A summary's declaration of what changed in its state tree since the
/// capture cursor was taken. The patch describes *structure*, not bytes:
/// the summary asserts "this array only gained these trailing elements"
/// from its own invariants (append-only arenas, monotone counters), and
/// the capture mark turns the assertion into the exact delta the
/// full-tree diff would have computed.
#[derive(Debug, Clone, PartialEq)]
pub enum StatePatch {
    /// Nothing under this node changed.
    Keep,
    /// The node was replaced by a scalar (null, bool, number, string).
    /// Container replacements are not lowerable — they force a full
    /// re-anchor, which is the right cost model for a structural rewrite.
    Replace(Value),
    /// The array gained exactly these trailing elements; the existing
    /// prefix is untouched.
    Append(Vec<Value>),
    /// Same-length array: one patch per element, in order.
    Elements(Vec<StatePatch>),
    /// Object: patches for the named keys; unmentioned keys are
    /// [`StatePatch::Keep`].
    Object(Vec<(String, StatePatch)>),
}

/// Bit width the codec's int-packer would use for a maximum value.
fn bit_width(max: u64) -> u32 {
    (64 - max.leading_zeros()).max(1)
}

/// Folds the encoding of a sequence of parts into `(len, crc)` without
/// materializing the bytes: literal parts stream through `crc32_extend`,
/// already-digested children combine via `crc32_combine`.
struct CrcAcc {
    crc: u32,
    len: u64,
}

impl CrcAcc {
    fn new() -> CrcAcc {
        CrcAcc { crc: 0, len: 0 }
    }

    fn bytes(&mut self, bytes: &[u8]) {
        self.crc = crc32_extend(self.crc, bytes);
        self.len += bytes.len() as u64;
    }

    fn chain(&mut self, crc: u32, len: u64) {
        self.crc = crc32_combine(self.crc, crc, len);
        self.len += len;
    }
}

/// Running digest of the codec's bit-packed int encoding: the LSB-first
/// bitstream is checksummed byte-by-byte as values arrive, with the
/// trailing partial byte held back until [`DenseMark::refresh`] needs it.
#[derive(Debug, Clone)]
struct PackedMark {
    /// Pack width the digest was built at. An append that grows the
    /// array's maximum past this width invalidates the whole digest
    /// (every prior value would repack differently).
    width: u32,
    /// CRC32 over the complete bytes emitted so far.
    crc: u32,
    /// Bits not yet forming a complete byte (low `partial_bits` bits).
    partial: u8,
    partial_bits: u32,
}

impl PackedMark {
    fn new(width: u32) -> PackedMark {
        PackedMark {
            width,
            crc: 0,
            partial: 0,
            partial_bits: 0,
        }
    }

    /// Appends one value to the bitstream, exactly replicating the
    /// codec's `i * width` LSB-first placement.
    fn push(&mut self, v: u64) {
        let mut acc = self.partial as u128 | (v as u128) << self.partial_bits;
        let mut bits = self.partial_bits + self.width;
        while bits >= 8 {
            self.crc = crc32_extend(self.crc, &[acc as u8]);
            acc >>= 8;
            bits -= 8;
        }
        self.partial = acc as u8;
        self.partial_bits = bits;
    }
}

/// Digest of an all-number array under every dense encoding the codec
/// can choose, maintained incrementally so an append costs only the new
/// elements. The encoding *choice* (f64 / varint / packed) is re-derived
/// at refresh time from the same aggregates the codec uses, so the mark
/// always lands on the same bytes `encode_array` would.
#[derive(Debug, Clone)]
struct DenseMark {
    /// Element count (always ≥ 1: empty arrays take the generic tag and
    /// are tracked as [`MarkNode::Struct`] with no children).
    count: u64,
    /// Every element is varint-exact so far (`u64 < 2^53`, bit-exact).
    all_exact: bool,
    /// Maximum value seen (meaningful only while `all_exact`).
    max: u64,
    /// Total varint-encoded size of all elements (while `all_exact`).
    varint_sum: u64,
    /// CRC32 of the raw `f64`-bits body (always maintained).
    f64_crc: u32,
    /// CRC32 of the varint body (while `all_exact`).
    varint_crc: u32,
    /// Bit-packed body digest; `None` once `all_exact` breaks (packing is
    /// then off the table for good).
    packed: Option<PackedMark>,
    /// The exact values themselves, retained while `all_exact` so a
    /// width-growing append can rebuild the packed digest at the new
    /// width (the bitstream repacks every prior value). Cleared the
    /// moment a non-exact element arrives — float-heavy arrays (the big
    /// ones, e.g. coordinate arenas) pay nothing.
    exact: Vec<u64>,
    enc_len: u64,
    enc_crc: u32,
}

impl DenseMark {
    /// Builds the digest for a non-empty all-number array. Two passes:
    /// the pack width depends on the final maximum, so the bitstream is
    /// only fed once that is known.
    fn of(ns: &[f64]) -> DenseMark {
        debug_assert!(!ns.is_empty());
        let mut mark = DenseMark {
            count: 0,
            all_exact: true,
            max: 0,
            varint_sum: 0,
            f64_crc: 0,
            varint_crc: 0,
            packed: None,
            exact: Vec::new(),
            enc_len: 0,
            enc_crc: 0,
        };
        let mut exact = Vec::with_capacity(ns.len());
        for &n in ns {
            mark.f64_crc = crc32_extend(mark.f64_crc, &n.to_bits().to_le_bytes());
            mark.count += 1;
            if mark.all_exact {
                match varint_exact(n) {
                    Some(v) => {
                        mark.max = mark.max.max(v);
                        mark.varint_sum += varint_len(v) as u64;
                        let mut buf = Vec::with_capacity(10);
                        put_varint(&mut buf, v);
                        mark.varint_crc = crc32_extend(mark.varint_crc, &buf);
                        exact.push(v);
                    }
                    None => mark.all_exact = false,
                }
            }
        }
        if mark.all_exact {
            let mut packed = PackedMark::new(bit_width(mark.max));
            for &v in &exact {
                packed.push(v);
            }
            mark.packed = Some(packed);
            mark.exact = exact;
        }
        mark.refresh()
            .expect("fresh dense mark always has its packed digest");
        mark
    }

    /// Extends the digest with appended elements, then re-derives the
    /// encoding. An append that grows the bit-pack width rebuilds the
    /// packed digest from the retained values (every prior value repacks
    /// at the new width) — O(count), amortized over at most 64 width
    /// steps for the array's lifetime.
    fn extend(&mut self, ns: &[f64]) -> Option<()> {
        for &n in ns {
            self.f64_crc = crc32_extend(self.f64_crc, &n.to_bits().to_le_bytes());
            self.count += 1;
            if self.all_exact {
                match varint_exact(n) {
                    Some(v) => {
                        self.exact.push(v);
                        self.max = self.max.max(v);
                        self.varint_sum += varint_len(v) as u64;
                        let mut buf = Vec::with_capacity(10);
                        put_varint(&mut buf, v);
                        self.varint_crc = crc32_extend(self.varint_crc, &buf);
                        match &mut self.packed {
                            Some(p) if p.width == bit_width(self.max) => p.push(v),
                            _ => {
                                let mut p = PackedMark::new(bit_width(self.max));
                                for &e in &self.exact {
                                    p.push(e);
                                }
                                self.packed = Some(p);
                            }
                        }
                    }
                    None => {
                        self.all_exact = false;
                        self.packed = None;
                        self.exact = Vec::new();
                    }
                }
            }
        }
        self.refresh()
    }

    /// Recomputes `enc_len`/`enc_crc` by making the codec's encoding
    /// choice from the maintained aggregates.
    fn refresh(&mut self) -> Option<()> {
        let mut header = Vec::with_capacity(12);
        let (body_crc, body_len);
        if self.all_exact {
            let width = bit_width(self.max) as u64;
            let packed_bytes = (self.count * width).div_ceil(8);
            if packed_bytes + 1 < self.varint_sum {
                let p = self.packed.as_ref()?;
                debug_assert_eq!(p.width as u64, width);
                header.push(TAG_PACKED_INTS);
                put_varint(&mut header, self.count);
                header.push(p.width as u8);
                body_crc = if p.partial_bits > 0 {
                    crc32_extend(p.crc, &[p.partial])
                } else {
                    p.crc
                };
                body_len = packed_bytes;
            } else {
                header.push(TAG_DENSE_VARINT);
                put_varint(&mut header, self.count);
                body_crc = self.varint_crc;
                body_len = self.varint_sum;
            }
        } else {
            header.push(TAG_DENSE_F64);
            put_varint(&mut header, self.count);
            body_crc = self.f64_crc;
            body_len = 8 * self.count;
        }
        self.enc_crc = crc32_combine(crc32(&header), body_crc, body_len);
        self.enc_len = header.len() as u64 + body_len;
        Some(())
    }
}

/// One node of the capture mark, mirroring the state tree's encoded
/// structure.
#[derive(Debug, Clone)]
enum MarkNode {
    /// Null / bool / number / string: the encoded bytes themselves
    /// (scalars are tiny, and keeping them makes `Replace`-with-equal
    /// collapse to a keep exactly like `bits_eq`).
    Scalar { bytes: Vec<u8>, crc: u32 },
    /// Non-empty all-number array on one of the dense encodings.
    Dense(DenseMark),
    /// Generic array (empty, or with at least one non-number element).
    Struct {
        children: Vec<MarkNode>,
        enc_len: u64,
        enc_crc: u32,
    },
    /// Object, entries in the state's (insertion) key order.
    Object {
        entries: Vec<(String, MarkNode)>,
        enc_len: u64,
        enc_crc: u32,
    },
}

fn struct_digest(children: &[MarkNode]) -> (u64, u32) {
    let mut header = vec![TAG_ARRAY];
    put_varint(&mut header, children.len() as u64);
    let mut acc = CrcAcc::new();
    acc.bytes(&header);
    for child in children {
        acc.chain(child.enc_crc(), child.enc_len());
    }
    (acc.len, acc.crc)
}

fn object_digest(entries: &[(String, MarkNode)]) -> (u64, u32) {
    let mut header = vec![TAG_OBJECT];
    put_varint(&mut header, entries.len() as u64);
    let mut acc = CrcAcc::new();
    acc.bytes(&header);
    for (key, child) in entries {
        let mut klen = Vec::with_capacity(10);
        put_varint(&mut klen, key.len() as u64);
        acc.bytes(&klen);
        acc.bytes(key.as_bytes());
        acc.chain(child.enc_crc(), child.enc_len());
    }
    (acc.len, acc.crc)
}

/// Builds the mark for a value tree, mirroring `encode_array`'s
/// dense-vs-generic decision node by node.
fn mark_of(value: &Value) -> MarkNode {
    match value {
        Value::Array(items) => {
            let numbers: Option<Vec<f64>> = items.iter().map(Value::as_f64).collect();
            match numbers {
                Some(ns) if !ns.is_empty() => MarkNode::Dense(DenseMark::of(&ns)),
                _ => {
                    let children: Vec<MarkNode> = items.iter().map(mark_of).collect();
                    let (enc_len, enc_crc) = struct_digest(&children);
                    MarkNode::Struct {
                        children,
                        enc_len,
                        enc_crc,
                    }
                }
            }
        }
        Value::Object(map) => {
            let entries: Vec<(String, MarkNode)> = map
                .iter()
                .map(|(key, item)| (key.clone(), mark_of(item)))
                .collect();
            let (enc_len, enc_crc) = object_digest(&entries);
            MarkNode::Object {
                entries,
                enc_len,
                enc_crc,
            }
        }
        scalar => {
            let bytes = encode_value_to_vec(scalar);
            MarkNode::Scalar {
                crc: crc32(&bytes),
                bytes,
            }
        }
    }
}

impl MarkNode {
    fn enc_len(&self) -> u64 {
        match self {
            MarkNode::Scalar { bytes, .. } => bytes.len() as u64,
            MarkNode::Dense(d) => d.enc_len,
            MarkNode::Struct { enc_len, .. } | MarkNode::Object { enc_len, .. } => *enc_len,
        }
    }

    fn enc_crc(&self) -> u32 {
        match self {
            MarkNode::Scalar { crc, .. } => *crc,
            MarkNode::Dense(d) => d.enc_crc,
            MarkNode::Struct { enc_crc, .. } | MarkNode::Object { enc_crc, .. } => *enc_crc,
        }
    }
}

/// Result of lowering one patch node: either the subtree is untouched
/// (and the diff would have emitted a keep / omitted the key), or the
/// exact wire op the diff would have produced.
enum Lowered {
    Keep,
    Op(Value),
}

/// Lowers a [`StatePatch`] into the diff's wire op grammar, updating the
/// mark in place. `None` means the patch is not provably byte-identical
/// to the full-tree diff; the mark may be partially updated and **must
/// be discarded** (the caller re-anchors and rebuilds it fresh).
fn lower(node: &mut MarkNode, patch: StatePatch) -> Option<Lowered> {
    match patch {
        StatePatch::Keep => Some(Lowered::Keep),
        StatePatch::Replace(value) => {
            if matches!(value, Value::Array(_) | Value::Object(_)) {
                return None;
            }
            let bytes = encode_value_to_vec(&value);
            if let MarkNode::Scalar { bytes: old, .. } = node {
                // Scalar byte equality is exactly `bits_eq` (numbers
                // encode their raw bits), so an unchanged counter
                // collapses to a keep like the diff's.
                if *old == bytes {
                    return Some(Lowered::Keep);
                }
            }
            let crc = crc32(&bytes);
            *node = MarkNode::Scalar { bytes, crc };
            Some(Lowered::Op(op(OP_REPLACE, value)))
        }
        StatePatch::Append(suffix) => {
            if suffix.is_empty() {
                return Some(Lowered::Keep);
            }
            match node {
                MarkNode::Dense(dense) => {
                    let ns: Vec<f64> = suffix
                        .iter()
                        .map(Value::as_f64)
                        .collect::<Option<Vec<f64>>>()?;
                    dense.extend(&ns)?;
                    Some(Lowered::Op(op(OP_APPEND, Value::Array(suffix))))
                }
                MarkNode::Struct { children, .. } if children.is_empty() => {
                    // An empty array takes the generic tag; appending may
                    // flip it onto a dense encoding, so rebuild outright
                    // (cost is O(suffix) — there was no prefix).
                    *node = mark_of(&Value::Array(suffix.clone()));
                    Some(Lowered::Op(op(OP_APPEND, Value::Array(suffix))))
                }
                MarkNode::Struct {
                    children,
                    enc_len,
                    enc_crc,
                } => {
                    // A non-empty generic array has a non-number element,
                    // so it stays generic no matter what is appended.
                    children.extend(suffix.iter().map(mark_of));
                    (*enc_len, *enc_crc) = struct_digest(children);
                    Some(Lowered::Op(op(OP_APPEND, Value::Array(suffix))))
                }
                _ => None,
            }
        }
        StatePatch::Elements(patches) => match node {
            MarkNode::Struct {
                children,
                enc_len,
                enc_crc,
            } if children.len() == patches.len() => {
                let mut ops = Vec::with_capacity(patches.len());
                let mut changed = false;
                for (child, patch) in children.iter_mut().zip(patches) {
                    match lower(child, patch)? {
                        Lowered::Keep => ops.push(op(OP_KEEP, Value::Null)),
                        Lowered::Op(o) => {
                            changed = true;
                            ops.push(o);
                        }
                    }
                }
                if !changed {
                    return Some(Lowered::Keep);
                }
                (*enc_len, *enc_crc) = struct_digest(children);
                Some(Lowered::Op(op(OP_ELEMENTS, Value::Array(ops))))
            }
            MarkNode::Dense(dense) if dense.count == patches.len() as u64 => {
                // In-place edits to dense arrays are not tracked; only an
                // all-keep (which the diff collapses) is lowerable.
                if patches.iter().all(|p| matches!(p, StatePatch::Keep)) {
                    Some(Lowered::Keep)
                } else {
                    None
                }
            }
            _ => None,
        },
        StatePatch::Object(patches) => {
            let MarkNode::Object {
                entries,
                enc_len,
                enc_crc,
            } = node
            else {
                return None;
            };
            let mut patches = patches;
            let mut changed = Map::new();
            for (key, child) in entries.iter_mut() {
                let patch = match patches.iter().position(|(k, _)| k == key) {
                    Some(pos) => patches.swap_remove(pos).1,
                    None => StatePatch::Keep,
                };
                match lower(child, patch)? {
                    Lowered::Keep => {}
                    Lowered::Op(o) => {
                        // Iterating in entry order reproduces the diff's
                        // base-key-order changed map.
                        changed.insert(key.clone(), o);
                    }
                }
            }
            if !patches.is_empty() {
                // A patch for a key the state doesn't have — the summary
                // and the mark disagree about the tree shape.
                return None;
            }
            if changed.is_empty() {
                return Some(Lowered::Keep);
            }
            (*enc_len, *enc_crc) = object_digest(entries);
            Some(Lowered::Op(op(OP_OBJECT, Value::Object(changed))))
        }
    }
}

/// The persistent capture state for one stream: the params of the last
/// captured snapshot plus the digest tree of its state. Replaces the
/// retained full `Snapshot` clone that `between`-based chaining needed —
/// the mark is O(structure), not O(data).
#[derive(Debug, Clone)]
pub struct CaptureMark {
    params: SnapshotParams,
    root: MarkNode,
}

impl CaptureMark {
    /// Builds the mark for a freshly captured snapshot (one full walk —
    /// the same cost as encoding the snapshot that was just written).
    pub fn of(params: SnapshotParams, state: &Value) -> CaptureMark {
        CaptureMark {
            params,
            root: mark_of(state),
        }
    }

    /// [`state_crc`](super::state_crc) of the state this mark describes —
    /// the `base_crc` the next chained delta will carry.
    pub fn state_crc(&self) -> u32 {
        self.root.enc_crc()
    }

    /// Params of the last captured state.
    pub fn params(&self) -> &SnapshotParams {
        &self.params
    }
}

impl SnapshotDelta {
    /// Builds the delta from the last captured state to the current one
    /// out of the summary's own [`StatePatch`], in time proportional to
    /// the patch — the full state is never walked. On success the mark is
    /// advanced to describe the new state and the returned delta is
    /// byte-identical to `SnapshotDelta::between(last, current)`.
    ///
    /// `None` means the patch could not be lowered (structural rewrite,
    /// shape mismatch): the caller must write a
    /// full snapshot instead and rebuild the mark with [`CaptureMark::of`]
    /// — the mark may be partially advanced and is no longer valid.
    pub fn from_patch(
        mark: &mut CaptureMark,
        new_params: &SnapshotParams,
        patch: StatePatch,
    ) -> Option<SnapshotDelta> {
        mark.params.ensure_compatible(new_params).ok()?;
        let base_crc = mark.root.enc_crc();
        let lowered = lower(&mut mark.root, patch)?;
        mark.params = new_params.clone();
        Some(SnapshotDelta {
            params: new_params.clone(),
            base_crc,
            patch: match lowered {
                Lowered::Keep => op(OP_KEEP, Value::Null),
                Lowered::Op(o) => o,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::super::{state_crc, Snapshot};
    use super::*;
    use crate::dataset::DistanceBounds;
    use crate::metric::Metric;

    fn params() -> SnapshotParams {
        SnapshotParams {
            algorithm: "sfdm2".into(),
            dim: 2,
            epsilon: 0.1,
            metric: Metric::Euclidean,
            bounds: DistanceBounds::new(1.0, 10.0).unwrap(),
            quotas: vec![2, 2],
            k: 4,
            shards: 1,
            window: 0,
        }
    }

    fn obj(entries: &[(&str, Value)]) -> Value {
        let mut map = Map::new();
        for (k, v) in entries {
            map.insert((*k).to_string(), v.clone());
        }
        Value::Object(map)
    }

    fn nums(ns: &[f64]) -> Value {
        Value::Array(ns.iter().map(|&n| Value::Number(n)).collect())
    }

    fn vals(ns: &[f64]) -> Vec<Value> {
        ns.iter().map(|&n| Value::Number(n)).collect()
    }

    /// The oracle check: lowering `patch` against a mark of `base` must
    /// produce the same bytes as the full-tree diff, and leave the mark
    /// describing `new`.
    fn assert_matches_diff(base: &Value, new: &Value, patch: StatePatch) {
        let base_snap = Snapshot {
            params: params(),
            state: base.clone(),
        };
        let new_snap = Snapshot {
            params: params(),
            state: new.clone(),
        };
        let oracle = SnapshotDelta::between(&base_snap, &new_snap).unwrap();
        let mut mark = CaptureMark::of(params(), base);
        assert_eq!(mark.state_crc(), state_crc(base), "base mark crc");
        let delta = SnapshotDelta::from_patch(&mut mark, &params(), patch)
            .expect("patch should be lowerable");
        assert_eq!(delta.to_bytes(), oracle.to_bytes(), "delta bytes");
        assert_eq!(mark.state_crc(), state_crc(new), "advanced mark crc");
        // And the delta actually reconstructs `new`.
        let applied = delta.apply_to(&base_snap).unwrap();
        assert_eq!(applied.state, *new);
    }

    #[test]
    fn mark_crc_matches_state_crc_across_all_encodings() {
        let states = [
            Value::Null,
            Value::Bool(true),
            Value::Number(-0.0),
            Value::String("snapshot ≠ text".into()),
            Value::Array(vec![]),        // generic (empty)
            nums(&[1.0, 2.0, 40_000.0]), // dense varint
            nums(&[0.25, -7.5]),         // dense f64
            nums(&(0..256).map(|i| f64::from(i % 2)).collect::<Vec<_>>()), // packed
            Value::Array(vec![Value::Number(1.0), Value::Null]), // generic (mixed)
            obj(&[
                ("a", Value::Number(1.5)),
                ("b", Value::Array(vec![Value::Bool(false)])),
                ("c", obj(&[("nested", nums(&[3.0, 4.0]))])),
            ]),
        ];
        for state in &states {
            let mark = CaptureMark::of(params(), state);
            assert_eq!(mark.state_crc(), state_crc(state), "{state:?}");
        }
    }

    #[test]
    fn lowered_patches_are_byte_identical_to_full_diffs() {
        let bits: Vec<f64> = (0..80).map(|i| f64::from(i % 2)).collect();
        let mut bits_new = bits.clone();
        bits_new.extend([1.0, 0.0]);
        let base = obj(&[
            ("bits", nums(&bits)),
            ("coords", nums(&[0.5, -1.25])),
            ("dim", Value::Number(2.0)),
            ("flag", Value::Bool(false)),
            ("ids", nums(&[1.0, 2.0, 300.0])),
            (
                "lanes",
                Value::Array(vec![nums(&[1.0, 2.0]), Value::Array(vec![])]),
            ),
            ("tag", Value::String("x".into())),
        ]);
        let new = obj(&[
            ("bits", nums(&bits_new)),
            ("coords", nums(&[0.5, -1.25, 3.5])),
            ("dim", Value::Number(2.0)),
            ("flag", Value::Bool(true)),
            ("ids", nums(&[1.0, 2.0, 300.0, 4.0])),
            (
                "lanes",
                Value::Array(vec![nums(&[1.0, 2.0, 7.0]), nums(&[9.0])]),
            ),
            ("tag", Value::String("x".into())),
        ]);
        let patch = StatePatch::Object(vec![
            ("bits".into(), StatePatch::Append(vals(&[1.0, 0.0]))),
            ("coords".into(), StatePatch::Append(vals(&[3.5]))),
            // Unchanged replace must collapse to a keep (key omitted).
            ("dim".into(), StatePatch::Replace(Value::Number(2.0))),
            ("flag".into(), StatePatch::Replace(Value::Bool(true))),
            ("ids".into(), StatePatch::Append(vals(&[4.0]))),
            (
                "lanes".into(),
                StatePatch::Elements(vec![
                    StatePatch::Append(vals(&[7.0])),
                    // Appending to the empty lane flips it dense.
                    StatePatch::Append(vals(&[9.0])),
                ]),
            ),
        ]);
        assert_matches_diff(&base, &new, patch);
    }

    #[test]
    fn all_keep_patch_collapses_to_the_top_level_keep() {
        let state = obj(&[
            ("coords", nums(&[1.0, 2.0])),
            (
                "lanes",
                Value::Array(vec![nums(&[1.0]), Value::Array(vec![])]),
            ),
            ("processed", Value::Number(2.0)),
        ]);
        let patch = StatePatch::Object(vec![
            ("coords".into(), StatePatch::Append(vec![])),
            (
                "lanes".into(),
                StatePatch::Elements(vec![StatePatch::Keep, StatePatch::Keep]),
            ),
            ("processed".into(), StatePatch::Replace(Value::Number(2.0))),
        ]);
        assert_matches_diff(&state, &state, patch);
    }

    #[test]
    fn chained_patches_keep_matching_the_diff() {
        // Three checkpoints on one mark: each delta must match the diff
        // from the previous state, with base_crc chaining through.
        let s0 = obj(&[("ids", nums(&[0.5])), ("n", Value::Number(1.0))]);
        let s1 = obj(&[("ids", nums(&[0.5, 1.5])), ("n", Value::Number(2.0))]);
        let s2 = obj(&[("ids", nums(&[0.5, 1.5, 2.5])), ("n", Value::Number(3.0))]);
        let mut mark = CaptureMark::of(params(), &s0);
        for (base, new, suffix, n) in [(&s0, &s1, 1.5, 2.0), (&s1, &s2, 2.5, 3.0)] {
            let oracle = SnapshotDelta::between(
                &Snapshot {
                    params: params(),
                    state: base.clone(),
                },
                &Snapshot {
                    params: params(),
                    state: new.clone(),
                },
            )
            .unwrap();
            let patch = StatePatch::Object(vec![
                ("ids".into(), StatePatch::Append(vals(&[suffix]))),
                ("n".into(), StatePatch::Replace(Value::Number(n))),
            ]);
            let delta = SnapshotDelta::from_patch(&mut mark, &params(), patch).unwrap();
            assert_eq!(delta.to_bytes(), oracle.to_bytes());
        }
        assert_eq!(mark.state_crc(), state_crc(&s2));
    }

    #[test]
    fn width_growing_append_repacks_when_packing_wins() {
        // 1000 zeros pack at one bit each; appending a 3 grows the width
        // to 2 while packing still beats varints — the mark repacks every
        // prior value from its retained exact values and the delta stays
        // byte-identical to the diff.
        let mut grown: Vec<f64> = vec![0.0; 1000];
        grown.push(3.0);
        let base = obj(&[("xs", nums(&vec![0.0; 1000]))]);
        let new = obj(&[("xs", nums(&grown))]);
        let patch = StatePatch::Object(vec![("xs".into(), StatePatch::Append(vals(&[3.0])))]);
        assert_matches_diff(&base, &new, patch);
    }

    #[test]
    fn width_growing_append_succeeds_when_varints_win() {
        // Same width growth, but with few elements varints stay smaller,
        // so the broken packed digest is irrelevant.
        let base = obj(&[("xs", nums(&[1.0, 1.0]))]);
        let new = obj(&[("xs", nums(&[1.0, 1.0, 900.0]))]);
        let patch = StatePatch::Object(vec![("xs".into(), StatePatch::Append(vals(&[900.0])))]);
        assert_matches_diff(&base, &new, patch);
    }

    #[test]
    fn non_exact_append_falls_back_to_dense_f64() {
        let base = obj(&[("xs", nums(&[1.0, 2.0]))]);
        let new = obj(&[("xs", nums(&[1.0, 2.0, 0.5]))]);
        let patch = StatePatch::Object(vec![("xs".into(), StatePatch::Append(vals(&[0.5])))]);
        assert_matches_diff(&base, &new, patch);
    }

    #[test]
    fn unlowerable_patches_are_refused() {
        let state = obj(&[("xs", nums(&[1.0, 2.0])), ("n", Value::Number(1.0))]);
        let cases = [
            // Container replacement.
            StatePatch::Object(vec![(
                "xs".into(),
                StatePatch::Replace(Value::Array(vec![])),
            )]),
            // Non-numeric append to a dense array.
            StatePatch::Object(vec![("xs".into(), StatePatch::Append(vec![Value::Null]))]),
            // Arity mismatch.
            StatePatch::Object(vec![(
                "xs".into(),
                StatePatch::Elements(vec![StatePatch::Keep]),
            )]),
            // Unknown key.
            StatePatch::Object(vec![("ghost".into(), StatePatch::Keep)]),
            // Append to a scalar.
            StatePatch::Object(vec![("n".into(), StatePatch::Append(vals(&[1.0])))]),
        ];
        for patch in cases {
            let mut mark = CaptureMark::of(params(), &state);
            assert!(
                SnapshotDelta::from_patch(&mut mark, &params(), patch.clone()).is_none(),
                "{patch:?}"
            );
        }
    }

    #[test]
    fn incompatible_params_are_refused() {
        let state = nums(&[1.0]);
        let mut mark = CaptureMark::of(params(), &state);
        let mut other = params();
        other.algorithm = "sfdm1".into();
        assert!(SnapshotDelta::from_patch(&mut mark, &other, StatePatch::Keep).is_none());
    }

    #[test]
    fn append_to_generic_array_stays_generic() {
        let base = Value::Array(vec![Value::String("a".into()), Value::Number(1.0)]);
        let new = Value::Array(vec![
            Value::String("a".into()),
            Value::Number(1.0),
            Value::Number(2.0),
        ]);
        assert_matches_diff(&base, &new, StatePatch::Append(vals(&[2.0])));
    }
}
