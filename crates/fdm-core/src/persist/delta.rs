//! Incremental (delta) snapshots: structural diffs between consecutive
//! checkpoints of one streaming summary.
//!
//! A full snapshot rewrites the whole summary even though the streaming
//! state is **append-mostly**: the arena only grows, candidate member
//! lists only gain ids, and everything else is a handful of counters. A
//! [`SnapshotDelta`] captures exactly that shape — it is a patch from one
//! captured state value tree to the next:
//!
//! * arrays whose old content is a bit-identical prefix of the new content
//!   record only the **appended suffix** (the arena's coordinate/group/id
//!   blobs, each candidate lane's member list);
//! * same-length arrays diff **element-wise** (the shard array of
//!   [`ShardedStream`](crate::streaming::sharded::ShardedStream), the
//!   fixed-length ladder lanes);
//! * objects diff **per key** (unchanged keys cost one byte);
//! * anything else is replaced wholesale.
//!
//! Equality is `f64`-**bitwise**, so a patch can never silently launder a
//! `-0.0`/`0.0` or NaN-payload difference.
//!
//! ## Chain integrity
//!
//! A delta only makes sense against the exact state it was diffed from.
//! Each delta therefore stores the CRC32 of its base state's canonical
//! binary encoding ([`state_crc`]); [`SnapshotDelta::apply_to`] recomputes
//! it and refuses a mismatched base with
//! [`FdmError::IncompatibleSnapshot`]. Consumers chain
//! `full + delta.1 + delta.2 + …`, verifying each link; a crashed writer
//! can leave a *stale* delta from a superseded chain behind, which the
//! CRC check turns into a clean chain end instead of corrupt state (the
//! write-ahead log covers everything after the last good link — see
//! `fdm-serve`'s engine).
//!
//! On disk a delta is framed exactly like a binary snapshot (magic
//! `FDMDELT2`, version, CRC32'd sections), so the fuzz harness covers both
//! decoders with one mutation engine.

use std::path::Path;

use serde::{Map, Value};

use crate::error::{FdmError, Result};

use super::codec::{
    self, decode_section_value, encode_value_to_vec, read_header, read_section, write_section,
    Reader,
};
use super::{write_bytes_atomic, Snapshot, SnapshotParams};

mod mark;

pub use mark::{CaptureMark, StatePatch};

/// Leading magic of a binary delta-snapshot file.
pub const DELTA_MAGIC: [u8; 8] = *b"FDMDELT2";

/// Delta container version (introduced with snapshot format v2).
pub const DELTA_VERSION: u32 = 2;

const SECTION_PARAMS: u8 = 1;
const SECTION_BASE_CRC: u8 = 3;
const SECTION_PATCH: u8 = 4;
const SECTION_END: u8 = 0xFF;

// Patch ops, encoded as single-key objects so they ride the ordinary value
// codec. Key names are one byte on purpose: a delta is mostly ops.
const OP_KEEP: &str = "k";
const OP_REPLACE: &str = "r";
const OP_APPEND: &str = "a";
const OP_ELEMENTS: &str = "e";
const OP_OBJECT: &str = "o";

/// CRC32 of a state value tree's canonical binary encoding — the chain
/// link identity used by [`SnapshotDelta`].
pub fn state_crc(state: &Value) -> u32 {
    codec::crc32(&encode_value_to_vec(state))
}

/// One incremental checkpoint: the patch from a base snapshot's state to a
/// newer state of the same stream.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotDelta {
    /// Envelope parameters of the **new** state (the dimension may have
    /// left its `0` wildcard since the base was captured; everything else
    /// must match the base).
    pub params: SnapshotParams,
    /// [`state_crc`] of the base state this delta applies to.
    pub base_crc: u32,
    /// The patch tree (see the module docs for the op grammar).
    patch: Value,
}

fn bits_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Number(x), Value::Number(y)) => x.to_bits() == y.to_bits(),
        (Value::Array(x), Value::Array(y)) => {
            x.len() == y.len() && x.iter().zip(y).all(|(u, v)| bits_eq(u, v))
        }
        (Value::Object(x), Value::Object(y)) => {
            x.len() == y.len()
                && x.iter()
                    .zip(y.iter())
                    .all(|((ka, va), (kb, vb))| ka == kb && bits_eq(va, vb))
        }
        _ => a == b,
    }
}

fn op(kind: &str, value: Value) -> Value {
    let mut map = Map::new();
    map.insert(kind.to_string(), value);
    Value::Object(map)
}

/// Computes the patch from `base` to `new` (total: applying it always
/// reproduces `new` bit-exactly; the diff only controls how *small* the
/// patch is).
fn diff(base: &Value, new: &Value) -> Value {
    if bits_eq(base, new) {
        return op(OP_KEEP, Value::Null);
    }
    match (base, new) {
        (Value::Array(old), Value::Array(cur)) if cur.len() > old.len() => {
            if old.iter().zip(cur).all(|(a, b)| bits_eq(a, b)) {
                op(OP_APPEND, Value::Array(cur[old.len()..].to_vec()))
            } else {
                op(OP_REPLACE, new.clone())
            }
        }
        (Value::Array(old), Value::Array(cur)) if cur.len() == old.len() => {
            let ops: Vec<Value> = old.iter().zip(cur).map(|(a, b)| diff(a, b)).collect();
            op(OP_ELEMENTS, Value::Array(ops))
        }
        (Value::Object(old), Value::Object(cur)) => {
            let same_keys = old.len() == cur.len()
                && old
                    .iter()
                    .zip(cur.iter())
                    .all(|((ka, _), (kb, _))| ka == kb);
            if !same_keys {
                return op(OP_REPLACE, new.clone());
            }
            let mut changed = Map::new();
            for ((key, a), (_, b)) in old.iter().zip(cur.iter()) {
                if !bits_eq(a, b) {
                    changed.insert(key.clone(), diff(a, b));
                }
            }
            op(OP_OBJECT, Value::Object(changed))
        }
        _ => op(OP_REPLACE, new.clone()),
    }
}

/// Applies a patch to a base value, validating every op against the base's
/// actual shape.
fn apply(base: &Value, patch: &Value) -> Result<Value> {
    let corrupt = |detail: String| FdmError::CorruptSnapshot {
        detail: format!("delta patch: {detail}"),
    };
    let obj = patch
        .as_object()
        .filter(|m| m.len() == 1)
        .ok_or_else(|| corrupt("op must be a single-key object".into()))?;
    let (kind, value) = obj.iter().next().expect("len checked");
    match kind.as_str() {
        OP_KEEP => Ok(base.clone()),
        OP_REPLACE => Ok(value.clone()),
        OP_APPEND => {
            let suffix = value
                .as_array()
                .ok_or_else(|| corrupt("append op without an array".into()))?;
            let mut items = base
                .as_array()
                .ok_or_else(|| corrupt("append op against a non-array".into()))?
                .clone();
            items.extend(suffix.iter().cloned());
            Ok(Value::Array(items))
        }
        OP_ELEMENTS => {
            let ops = value
                .as_array()
                .ok_or_else(|| corrupt("element op without an array".into()))?;
            let items = base
                .as_array()
                .ok_or_else(|| corrupt("element op against a non-array".into()))?;
            if ops.len() != items.len() {
                return Err(corrupt(format!(
                    "element op has {} entries for an array of {}",
                    ops.len(),
                    items.len()
                )));
            }
            items
                .iter()
                .zip(ops)
                .map(|(item, op)| apply(item, op))
                .collect::<Result<Vec<Value>>>()
                .map(Value::Array)
        }
        OP_OBJECT => {
            let changed = value
                .as_object()
                .ok_or_else(|| corrupt("object op without an object".into()))?;
            let map = base
                .as_object()
                .ok_or_else(|| corrupt("object op against a non-object".into()))?;
            let mut out = Map::new();
            for (key, item) in map.iter() {
                match changed.get(key) {
                    Some(op) => out.insert(key.clone(), apply(item, op)?),
                    None => out.insert(key.clone(), item.clone()),
                };
            }
            for (key, _) in changed.iter() {
                if !map.contains_key(key) {
                    return Err(corrupt(format!("op for unknown key `{key}`")));
                }
            }
            Ok(Value::Object(out))
        }
        other => Err(corrupt(format!("unknown op `{other}`"))),
    }
}

impl SnapshotDelta {
    /// Diffs two snapshots of the same stream, `base` older than `new`.
    ///
    /// The envelopes must describe the same deployment (same algorithm,
    /// `ε`, metric, bounds, quotas, `k`, shards; the dimension may leave
    /// its pre-data wildcard).
    pub fn between(base: &Snapshot, new: &Snapshot) -> Result<SnapshotDelta> {
        base.params.ensure_compatible(&new.params)?;
        Ok(SnapshotDelta {
            params: new.params.clone(),
            base_crc: state_crc(&base.state),
            patch: diff(&base.state, &new.state),
        })
    }

    /// Applies this delta to the snapshot it was diffed from, yielding the
    /// newer snapshot bit-exactly.
    ///
    /// A base whose state checksum disagrees with [`SnapshotDelta::base_crc`]
    /// is refused with [`FdmError::IncompatibleSnapshot`] — the marker a
    /// chain consumer uses to recognize a stale delta from a superseded
    /// chain (see the module docs); genuine file corruption is caught
    /// earlier by the section checksums as [`FdmError::CorruptSnapshot`].
    pub fn apply_to(&self, base: &Snapshot) -> Result<Snapshot> {
        let actual = state_crc(&base.state);
        if actual != self.base_crc {
            return Err(FdmError::IncompatibleSnapshot {
                detail: format!(
                    "delta was diffed from a state with checksum {:#010x}, \
                     this base has {actual:#010x} (stale or out-of-order delta)",
                    self.base_crc
                ),
            });
        }
        self.params.ensure_compatible(&base.params)?;
        Ok(Snapshot {
            params: self.params.clone(),
            state: apply(&base.state, &self.patch)?,
        })
    }

    /// Encodes the delta into its binary frame (magic `FDMDELT2`).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(128);
        out.extend_from_slice(&DELTA_MAGIC);
        out.extend_from_slice(&DELTA_VERSION.to_le_bytes());
        write_section(
            &mut out,
            SECTION_PARAMS,
            &encode_value_to_vec(&serde::Serialize::to_value(&self.params)),
        );
        write_section(&mut out, SECTION_BASE_CRC, &self.base_crc.to_le_bytes());
        write_section(&mut out, SECTION_PATCH, &encode_value_to_vec(&self.patch));
        write_section(&mut out, SECTION_END, &[]);
        out
    }

    /// Decodes a binary delta frame, validating magic, version, and
    /// section checksums.
    pub fn from_bytes(bytes: &[u8]) -> Result<SnapshotDelta> {
        let mut r = Reader::new(bytes, "delta");
        read_header(&mut r, &DELTA_MAGIC, DELTA_VERSION)?;
        let mut params: Option<SnapshotParams> = None;
        let mut base_crc: Option<u32> = None;
        let mut patch: Option<Value> = None;
        loop {
            let (tag, payload) = read_section(&mut r)?;
            match tag {
                SECTION_PARAMS if params.is_none() => {
                    let value = decode_section_value(payload, "delta")?;
                    params = Some(
                        <SnapshotParams as serde::Deserialize>::from_value(&value).map_err(
                            |e| FdmError::CorruptSnapshot {
                                detail: format!("invalid delta `params` section: {e}"),
                            },
                        )?,
                    );
                }
                SECTION_BASE_CRC if base_crc.is_none() => {
                    if payload.len() != 4 {
                        return Err(r.corrupt("base-crc section must be 4 bytes"));
                    }
                    base_crc = Some(u32::from_le_bytes([
                        payload[0], payload[1], payload[2], payload[3],
                    ]));
                }
                SECTION_PATCH if patch.is_none() => {
                    patch = Some(decode_section_value(payload, "delta")?);
                }
                SECTION_END => {
                    if !payload.is_empty() {
                        return Err(r.corrupt("end section must be empty"));
                    }
                    break;
                }
                SECTION_PARAMS | SECTION_BASE_CRC | SECTION_PATCH => {
                    return Err(r.corrupt(format!("duplicate section {tag}")));
                }
                other => return Err(r.corrupt(format!("unknown section tag {other}"))),
            }
        }
        if r.remaining() != 0 {
            return Err(r.corrupt(format!(
                "{} trailing bytes after end section",
                r.remaining()
            )));
        }
        match (params, base_crc, patch) {
            (Some(params), Some(base_crc), Some(patch)) => Ok(SnapshotDelta {
                params,
                base_crc,
                patch,
            }),
            (None, ..) => Err(r.corrupt("missing params section")),
            (_, None, _) => Err(r.corrupt("missing base-crc section")),
            (.., None) => Err(r.corrupt("missing patch section")),
        }
    }

    /// Writes the delta to a file with the same atomic temp-file + rename +
    /// fsync discipline as full snapshots.
    pub fn write_to_file(&self, path: impl AsRef<Path>) -> Result<()> {
        write_bytes_atomic(path.as_ref(), &self.to_bytes())
    }

    /// Reads and decodes a delta file.
    pub fn read_from_file(path: impl AsRef<Path>) -> Result<SnapshotDelta> {
        let path = path.as_ref();
        let bytes = std::fs::read(path).map_err(|e| FdmError::SnapshotIo {
            detail: format!("read {}: {e}", path.display()),
        })?;
        SnapshotDelta::from_bytes(&bytes)
    }

    /// Serialized size in bytes (for logging / the snapshot bench).
    pub fn encoded_len(&self) -> usize {
        self.to_bytes().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DistanceBounds;
    use crate::metric::Metric;

    fn params() -> SnapshotParams {
        SnapshotParams {
            algorithm: "sfdm2".into(),
            dim: 2,
            epsilon: 0.1,
            metric: Metric::Euclidean,
            bounds: DistanceBounds::new(1.0, 10.0).unwrap(),
            quotas: vec![2, 2],
            k: 4,
            shards: 1,
            window: 0,
        }
    }

    fn obj(entries: &[(&str, Value)]) -> Value {
        let mut map = Map::new();
        for (k, v) in entries {
            map.insert((*k).to_string(), v.clone());
        }
        Value::Object(map)
    }

    fn nums(ns: &[f64]) -> Value {
        Value::Array(ns.iter().map(|&n| Value::Number(n)).collect())
    }

    #[test]
    fn diff_apply_is_total_and_exact() {
        let base = obj(&[
            ("coords", nums(&[1.0, 2.0])),
            ("processed", Value::Number(2.0)),
            ("lanes", Value::Array(vec![nums(&[0.0]), nums(&[])])),
        ]);
        let new = obj(&[
            ("coords", nums(&[1.0, 2.0, 3.5])),
            ("processed", Value::Number(3.0)),
            ("lanes", Value::Array(vec![nums(&[0.0, 2.0]), nums(&[])])),
        ]);
        let patch = diff(&base, &new);
        let applied = apply(&base, &patch).unwrap();
        assert!(bits_eq(&applied, &new), "{applied:?}");
        // Appended coords ride an append op, not a replace of the blob.
        let coords_op = patch.get(OP_OBJECT).unwrap().get("coords").unwrap();
        assert!(coords_op.get(OP_APPEND).is_some(), "{coords_op:?}");
    }

    #[test]
    fn bitwise_equality_separates_signed_zero() {
        assert!(bits_eq(&Value::Number(0.0), &Value::Number(0.0)));
        assert!(!bits_eq(&Value::Number(0.0), &Value::Number(-0.0)));
        let patch = diff(&Value::Number(0.0), &Value::Number(-0.0));
        assert!(patch.get(OP_REPLACE).is_some());
    }

    #[test]
    fn delta_round_trips_through_bytes() {
        let base = Snapshot {
            params: params(),
            state: nums(&[1.0, 2.0]),
        };
        let new = Snapshot {
            params: params(),
            state: nums(&[1.0, 2.0, 3.0]),
        };
        let delta = SnapshotDelta::between(&base, &new).unwrap();
        let back = SnapshotDelta::from_bytes(&delta.to_bytes()).unwrap();
        assert_eq!(delta, back);
        let applied = back.apply_to(&base).unwrap();
        assert_eq!(applied, new);
    }

    #[test]
    fn stale_base_is_incompatible_not_corrupt() {
        let base = Snapshot {
            params: params(),
            state: nums(&[1.0]),
        };
        let new = Snapshot {
            params: params(),
            state: nums(&[1.0, 2.0]),
        };
        let delta = SnapshotDelta::between(&base, &new).unwrap();
        let err = delta.apply_to(&new).unwrap_err();
        assert!(
            matches!(err, FdmError::IncompatibleSnapshot { .. }),
            "{err}"
        );
    }

    #[test]
    fn mismatched_algorithms_refuse_to_diff() {
        let base = Snapshot {
            params: params(),
            state: Value::Null,
        };
        let mut other = params();
        other.algorithm = "sfdm1".into();
        let new = Snapshot {
            params: other,
            state: Value::Null,
        };
        let err = SnapshotDelta::between(&base, &new).unwrap_err();
        assert!(
            matches!(err, FdmError::IncompatibleSnapshot { .. }),
            "{err}"
        );
    }

    #[test]
    fn malformed_patches_are_corrupt() {
        for bad in [
            Value::Null,
            obj(&[("zz", Value::Null)]),
            obj(&[(OP_APPEND, Value::Null)]),
            obj(&[(OP_ELEMENTS, Value::Array(vec![]))]),
            obj(&[(OP_OBJECT, obj(&[("ghost", op(OP_KEEP, Value::Null))]))]),
        ] {
            let base = obj(&[("x", nums(&[1.0]))]);
            let err = apply(&base, &bad).unwrap_err();
            assert!(matches!(err, FdmError::CorruptSnapshot { .. }), "{bad:?}");
        }
    }
}
