//! Binary snapshot codec — format version 2.
//!
//! The v1 snapshot is a JSON document; readable, but the text encoding
//! dominates capture time (every `f64` formats through shortest-round-trip
//! printing and parses back digit by digit) and blows the arena up to ~3–4×
//! its binary size. Format v2 keeps the *same* logical envelope
//! ([`Snapshot`]: params + state value tree) but frames it as little-endian
//! binary sections:
//!
//! ```text
//! magic    "FDMSNAP2"                              (8 bytes)
//! version  u32 LE = 2                              (4 bytes)
//! section* [tag u8][len varint][payload][crc32 u32 LE]
//!          tag 1 = params   (one encoded value)
//!          tag 2 = state    (one encoded value)
//!          tag 255 = end    (empty payload; nothing may follow)
//! ```
//!
//! Every section payload carries its own CRC32 (IEEE), so a flipped,
//! truncated, or duplicated byte anywhere in a payload is detected *before*
//! the value decoder runs — the decoder only ever sees checksummed bytes,
//! and the fuzz harness (`tests/persist_fuzz.rs`) pins that no mutation
//! panics or restores silently-wrong state.
//!
//! Values are encoded with a small tag set; the two array fast paths are
//! what make the format dense:
//!
//! * an all-number array whose elements are exactly representable as
//!   `u64 < 2^53` (candidate member ids, group labels, external ids)
//!   packs as **varints** — one to three bytes per id instead of a JSON
//!   integer plus comma;
//! * any other all-number array (the arena's row-major coordinate blob,
//!   the guess ladder's `µ` values) packs as **raw `f64` bits**, 8 bytes
//!   per value, bit-exact by construction.
//!
//! Decoding maps both back to plain [`Value::Array`] trees, so the
//! algorithm-level `restore_state` code is format-agnostic: everything
//! above this module sees the same value tree v1 produced.

use serde::{Deserialize, Serialize, Value};

use crate::error::{FdmError, Result};

use super::{Snapshot, SnapshotParams};

/// Leading magic of a binary (v2) snapshot file.
pub const BINARY_MAGIC: [u8; 8] = *b"FDMSNAP2";

/// The binary container format version this build reads and writes.
pub const BINARY_VERSION: u32 = 2;

const SECTION_PARAMS: u8 = 1;
const SECTION_STATE: u8 = 2;
const SECTION_END: u8 = 0xFF;

const TAG_NULL: u8 = 0;
const TAG_FALSE: u8 = 1;
const TAG_TRUE: u8 = 2;
const TAG_F64: u8 = 3;
const TAG_STRING: u8 = 4;
pub(crate) const TAG_ARRAY: u8 = 5;
pub(crate) const TAG_OBJECT: u8 = 6;
pub(crate) const TAG_DENSE_F64: u8 = 7;
pub(crate) const TAG_DENSE_VARINT: u8 = 8;
pub(crate) const TAG_PACKED_INTS: u8 = 9;

/// Recursion guard for the value decoder. Section CRCs mean corrupt bytes
/// never reach it, but a depth cap keeps even a CRC collision from turning
/// into a stack overflow (which would abort, not return a typed error).
const MAX_DEPTH: usize = 64;

/// Largest integer exactly representable in `f64` (and the varint cap).
const MAX_EXACT_INT: u64 = 1 << 53;

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected, init/xorout 0xFFFFFFFF)
// ---------------------------------------------------------------------------

const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC32 (IEEE) of a byte slice — the per-section integrity check.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Extends a finalized CRC32 with more trailing bytes:
/// `crc32_extend(crc32(a), b) == crc32(a ++ b)`. This is what makes the
/// dirty-set capture marks O(appended): an append-only blob's checksum is
/// carried forward instead of re-walked.
pub(crate) fn crc32_extend(crc: u32, bytes: &[u8]) -> u32 {
    let mut reg = !crc;
    for &b in bytes {
        reg = (reg >> 8) ^ CRC32_TABLE[((reg ^ b as u32) & 0xFF) as usize];
    }
    !reg
}

/// CRC32 of a concatenation from the parts' checksums alone:
/// `crc32_combine(crc32(a), crc32(b), b.len()) == crc32(a ++ b)` in
/// `O(log len2)` — the zlib GF(2) matrix construction. Capture marks use
/// it to recombine a parent node's checksum from its children's without
/// touching the children's bytes.
pub(crate) fn crc32_combine(crc1: u32, crc2: u32, len2: u64) -> u32 {
    fn times(mat: &[u32; 32], mut vec: u32) -> u32 {
        let mut sum = 0u32;
        let mut i = 0;
        while vec != 0 {
            if vec & 1 != 0 {
                sum ^= mat[i];
            }
            vec >>= 1;
            i += 1;
        }
        sum
    }
    fn square(dst: &mut [u32; 32], src: &[u32; 32]) {
        for n in 0..32 {
            dst[n] = times(src, src[n]);
        }
    }
    if len2 == 0 {
        return crc1;
    }
    // Operator for one zero bit appended to the message.
    let mut odd = [0u32; 32];
    odd[0] = 0xEDB8_8320;
    let mut row = 1u32;
    for cell in odd.iter_mut().skip(1) {
        *cell = row;
        row <<= 1;
    }
    let mut even = [0u32; 32];
    square(&mut even, &odd); // two zero bits
    square(&mut odd, &even); // four zero bits
    let mut crc1 = crc1;
    let mut len2 = len2;
    // Apply len2 zero bytes (8·len2 zero bits) to crc1 by binary
    // decomposition, squaring the operator each round.
    loop {
        square(&mut even, &odd);
        if len2 & 1 != 0 {
            crc1 = times(&even, crc1);
        }
        len2 >>= 1;
        if len2 == 0 {
            break;
        }
        square(&mut odd, &even);
        if len2 & 1 != 0 {
            crc1 = times(&odd, crc1);
        }
        len2 >>= 1;
        if len2 == 0 {
            break;
        }
    }
    crc1 ^ crc2
}

// ---------------------------------------------------------------------------
// Varints (LEB128)
// ---------------------------------------------------------------------------

pub(crate) fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// The `u64` a [`Value::Number`] packs into a varint losslessly, if any:
/// non-negative, integral, `< 2^53`, and bit-identical after the round
/// trip (which excludes `-0.0`, `NaN`, and infinities by construction).
pub(crate) fn varint_exact(n: f64) -> Option<u64> {
    let v = n as u64; // saturating for negatives/NaN/∞ — caught below
    if v < MAX_EXACT_INT && (v as f64).to_bits() == n.to_bits() {
        Some(v)
    } else {
        None
    }
}

// ---------------------------------------------------------------------------
// Bounded reader
// ---------------------------------------------------------------------------

/// A bounds-checked cursor over untrusted bytes: every read is validated
/// against the remaining length (no allocation is sized from unvalidated
/// input), and every failure is a typed [`FdmError::CorruptSnapshot`].
pub(crate) struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Context for error messages (`"snapshot"` / `"delta"`).
    what: &'static str,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(bytes: &'a [u8], what: &'static str) -> Self {
        Reader {
            bytes,
            pos: 0,
            what,
        }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    pub(crate) fn corrupt(&self, detail: impl std::fmt::Display) -> FdmError {
        FdmError::CorruptSnapshot {
            detail: format!("binary {} at byte {}: {detail}", self.what, self.pos),
        }
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if n > self.remaining() {
            return Err(self.corrupt(format!(
                "need {n} bytes, only {} remain (truncated?)",
                self.remaining()
            )));
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    pub(crate) fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32_le(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn varint(&mut self) -> Result<u64> {
        let mut v: u64 = 0;
        for shift in (0..64).step_by(7) {
            let byte = self.u8()?;
            let bits = (byte & 0x7F) as u64;
            if shift == 63 && bits > 1 {
                return Err(self.corrupt("varint overflows 64 bits"));
            }
            v |= bits << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(self.corrupt("varint longer than 10 bytes"))
    }

    /// A varint that must fit `usize` and plausibly fit the remaining
    /// input (`count * min_size ≤ remaining`), so corrupted counts are
    /// rejected before any allocation is sized from them.
    fn count(&mut self, min_size: usize, what: &str) -> Result<usize> {
        let v = self.varint()?;
        let max = (self.remaining() / min_size.max(1)) as u64;
        if v > max {
            return Err(self.corrupt(format!(
                "{what} count {v} exceeds what {} remaining bytes can hold",
                self.remaining()
            )));
        }
        Ok(v as usize)
    }
}

// ---------------------------------------------------------------------------
// Value encoding
// ---------------------------------------------------------------------------

/// Appends the binary encoding of one value tree.
pub(crate) fn encode_value(out: &mut Vec<u8>, value: &Value) {
    match value {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(false) => out.push(TAG_FALSE),
        Value::Bool(true) => out.push(TAG_TRUE),
        Value::Number(n) => {
            out.push(TAG_F64);
            out.extend_from_slice(&n.to_bits().to_le_bytes());
        }
        Value::String(s) => {
            out.push(TAG_STRING);
            put_varint(out, s.len() as u64);
            out.extend_from_slice(s.as_bytes());
        }
        Value::Array(items) => encode_array(out, items),
        Value::Object(map) => {
            out.push(TAG_OBJECT);
            put_varint(out, map.len() as u64);
            for (key, item) in map.iter() {
                put_varint(out, key.len() as u64);
                out.extend_from_slice(key.as_bytes());
                encode_value(out, item);
            }
        }
    }
}

fn encode_array(out: &mut Vec<u8>, items: &[Value]) {
    let numbers: Option<Vec<f64>> = items.iter().map(Value::as_f64).collect();
    match numbers {
        Some(ns) if !ns.is_empty() => {
            if let Some(ids) = ns
                .iter()
                .map(|&n| varint_exact(n))
                .collect::<Option<Vec<u64>>>()
            {
                encode_int_array(out, &ids);
            } else {
                out.push(TAG_DENSE_F64);
                put_varint(out, ns.len() as u64);
                for n in ns {
                    out.extend_from_slice(&n.to_bits().to_le_bytes());
                }
            }
        }
        _ => {
            out.push(TAG_ARRAY);
            put_varint(out, items.len() as u64);
            for item in items {
                encode_value(out, item);
            }
        }
    }
}

/// Encodes an all-integer array, choosing between varints (good when
/// values are mostly tiny or very skewed) and fixed-bit-width packing
/// (good when values share a small range — candidate member ids, group
/// labels, and the 0/1 coordinates of binary-attribute datasets, where it
/// reaches one *bit* per value).
fn encode_int_array(out: &mut Vec<u8>, ids: &[u64]) {
    let max = ids.iter().copied().max().unwrap_or(0);
    // Width 1..=53: an all-zero array still uses width 1, so the decoder's
    // `count ≤ 8 × remaining` bound holds for every packed payload.
    let width = (64 - max.leading_zeros()).max(1) as usize;
    let packed_bytes = (ids.len() * width).div_ceil(8);
    let varint_bytes: usize = ids.iter().map(|&v| varint_len(v)).sum();
    if packed_bytes + 1 < varint_bytes {
        out.push(TAG_PACKED_INTS);
        put_varint(out, ids.len() as u64);
        out.push(width as u8);
        let mut bits: Vec<u8> = vec![0; packed_bytes];
        for (i, &v) in ids.iter().enumerate() {
            let pos = i * width;
            let (byte, shift) = (pos / 8, pos % 8);
            let window = (v as u128) << shift;
            for (j, b) in window
                .to_le_bytes()
                .iter()
                .enumerate()
                .take((width + shift).div_ceil(8))
            {
                bits[byte + j] |= b;
            }
        }
        out.extend_from_slice(&bits);
    } else {
        out.push(TAG_DENSE_VARINT);
        put_varint(out, ids.len() as u64);
        for &id in ids {
            put_varint(out, id);
        }
    }
}

pub(crate) fn varint_len(v: u64) -> usize {
    ((64 - v.leading_zeros()).max(1) as usize).div_ceil(7)
}

/// The binary encoding of one value tree as an owned buffer (the delta
/// module's chain checksum is the CRC32 of this encoding).
pub(crate) fn encode_value_to_vec(value: &Value) -> Vec<u8> {
    let mut out = Vec::new();
    encode_value(&mut out, value);
    out
}

/// Decodes one value tree from a bounds-checked reader.
pub(crate) fn decode_value(r: &mut Reader<'_>, depth: usize) -> Result<Value> {
    if depth > MAX_DEPTH {
        return Err(r.corrupt(format!("value tree deeper than {MAX_DEPTH} levels")));
    }
    let tag = r.u8()?;
    match tag {
        TAG_NULL => Ok(Value::Null),
        TAG_FALSE => Ok(Value::Bool(false)),
        TAG_TRUE => Ok(Value::Bool(true)),
        TAG_F64 => {
            let b = r.take(8)?;
            let bits = u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]);
            Ok(Value::Number(f64::from_bits(bits)))
        }
        TAG_STRING => {
            let len = r.count(1, "string byte")?;
            let bytes = r.take(len)?;
            let s = std::str::from_utf8(bytes)
                .map_err(|e| r.corrupt(format!("string is not UTF-8: {e}")))?;
            Ok(Value::String(s.to_string()))
        }
        TAG_ARRAY => {
            let count = r.count(1, "array element")?;
            let mut items = Vec::with_capacity(count);
            for _ in 0..count {
                items.push(decode_value(r, depth + 1)?);
            }
            Ok(Value::Array(items))
        }
        TAG_OBJECT => {
            let count = r.count(2, "object entry")?;
            let mut map = serde::Map::new();
            for _ in 0..count {
                let key_len = r.count(1, "object key byte")?;
                let key = std::str::from_utf8(r.take(key_len)?)
                    .map_err(|e| r.corrupt(format!("object key is not UTF-8: {e}")))?
                    .to_string();
                let value = decode_value(r, depth + 1)?;
                map.insert(key, value);
            }
            Ok(Value::Object(map))
        }
        TAG_DENSE_F64 => {
            let count = r.count(8, "dense f64")?;
            let mut items = Vec::with_capacity(count);
            for _ in 0..count {
                let b = r.take(8)?;
                let bits = u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]);
                items.push(Value::Number(f64::from_bits(bits)));
            }
            Ok(Value::Array(items))
        }
        TAG_DENSE_VARINT => {
            let count = r.count(1, "packed id")?;
            let mut items = Vec::with_capacity(count);
            for _ in 0..count {
                let v = r.varint()?;
                if v >= MAX_EXACT_INT {
                    return Err(r.corrupt(format!("packed integer {v} exceeds 2^53")));
                }
                items.push(Value::Number(v as f64));
            }
            Ok(Value::Array(items))
        }
        TAG_PACKED_INTS => {
            let count = {
                // Width ≥ 1 bit per element, so a count the remaining
                // bytes cannot hold (at 8 per byte) is corrupt before any
                // allocation happens.
                let v = r.varint()?;
                let max = r.remaining().saturating_mul(8) as u64;
                if v > max {
                    return Err(r.corrupt(format!(
                        "bit-packed count {v} exceeds what {} remaining bytes can hold",
                        r.remaining()
                    )));
                }
                v as usize
            };
            let width = r.u8()? as usize;
            if width == 0 || width > 53 {
                return Err(r.corrupt(format!("bit-pack width {width} outside 1..=53")));
            }
            let bytes = r.take((count * width).div_ceil(8))?;
            let mask = (1u128 << width) - 1;
            let mut items = Vec::with_capacity(count);
            for i in 0..count {
                let pos = i * width;
                let (byte, shift) = (pos / 8, pos % 8);
                let mut window = [0u8; 16];
                let span = ((width + shift).div_ceil(8)).min(bytes.len() - byte);
                window[..span].copy_from_slice(&bytes[byte..byte + span]);
                let v = ((u128::from_le_bytes(window) >> shift) & mask) as u64;
                items.push(Value::Number(v as f64));
            }
            Ok(Value::Array(items))
        }
        other => Err(r.corrupt(format!("unknown value tag {other}"))),
    }
}

// ---------------------------------------------------------------------------
// Section framing (shared with the delta codec)
// ---------------------------------------------------------------------------

pub(crate) fn write_section(out: &mut Vec<u8>, tag: u8, payload: &[u8]) {
    out.push(tag);
    put_varint(out, payload.len() as u64);
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32(payload).to_le_bytes());
}

/// Reads one `[tag][len][payload][crc]` section, verifying the checksum.
pub(crate) fn read_section<'a>(r: &mut Reader<'a>) -> Result<(u8, &'a [u8])> {
    let tag = r.u8()?;
    let len = r.count(1, "section payload byte")?;
    let payload = r.take(len)?;
    let stored = r.u32_le()?;
    let actual = crc32(payload);
    if stored != actual {
        return Err(r.corrupt(format!(
            "section {tag} checksum mismatch (stored {stored:#010x}, computed {actual:#010x})"
        )));
    }
    Ok((tag, payload))
}

/// Decodes one value occupying an entire section payload.
pub(crate) fn decode_section_value(payload: &[u8], what: &'static str) -> Result<Value> {
    let mut r = Reader::new(payload, what);
    let value = decode_value(&mut r, 0)?;
    if r.remaining() != 0 {
        return Err(r.corrupt(format!("{} trailing bytes after value", r.remaining())));
    }
    Ok(value)
}

/// Reads and validates a `magic + version` header, returning the version.
/// A version newer than `supported` is [`FdmError::UnsupportedSnapshotVersion`].
pub(crate) fn read_header(r: &mut Reader<'_>, magic: &[u8; 8], supported: u32) -> Result<()> {
    let found = r.take(8)?;
    if found != magic {
        return Err(r.corrupt(format!(
            "bad magic {:?} (expected {:?})",
            String::from_utf8_lossy(found),
            String::from_utf8_lossy(magic)
        )));
    }
    let version = r.u32_le()?;
    if version > supported {
        return Err(FdmError::UnsupportedSnapshotVersion {
            found: version as u64,
            supported: supported as u64,
        });
    }
    if version != supported {
        return Err(r.corrupt(format!(
            "binary container version {version} (this frame requires {supported})"
        )));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Snapshot frame
// ---------------------------------------------------------------------------

/// Encodes a snapshot into the v2 binary frame.
pub fn encode_snapshot(snapshot: &Snapshot) -> Vec<u8> {
    let mut out = Vec::with_capacity(256);
    out.extend_from_slice(&BINARY_MAGIC);
    out.extend_from_slice(&BINARY_VERSION.to_le_bytes());
    write_section(
        &mut out,
        SECTION_PARAMS,
        &encode_value_to_vec(&snapshot.params.to_value()),
    );
    write_section(
        &mut out,
        SECTION_STATE,
        &encode_value_to_vec(&snapshot.state),
    );
    write_section(&mut out, SECTION_END, &[]);
    out
}

/// Decodes a v2 binary snapshot frame, validating magic, version, section
/// checksums, and the absence of trailing bytes.
pub fn decode_snapshot(bytes: &[u8]) -> Result<Snapshot> {
    let mut r = Reader::new(bytes, "snapshot");
    read_header(&mut r, &BINARY_MAGIC, BINARY_VERSION)?;
    let mut params: Option<SnapshotParams> = None;
    let mut state: Option<Value> = None;
    loop {
        let (tag, payload) = read_section(&mut r)?;
        match tag {
            SECTION_PARAMS if params.is_none() => {
                let value = decode_section_value(payload, "snapshot")?;
                params = Some(SnapshotParams::from_value(&value).map_err(|e| {
                    FdmError::CorruptSnapshot {
                        detail: format!("invalid `params` section: {e}"),
                    }
                })?);
            }
            SECTION_STATE if state.is_none() => {
                state = Some(decode_section_value(payload, "snapshot")?);
            }
            SECTION_END => {
                if !payload.is_empty() {
                    return Err(r.corrupt("end section must be empty"));
                }
                break;
            }
            SECTION_PARAMS | SECTION_STATE => {
                return Err(r.corrupt(format!("duplicate section {tag}")));
            }
            other => return Err(r.corrupt(format!("unknown section tag {other}"))),
        }
    }
    if r.remaining() != 0 {
        return Err(r.corrupt(format!(
            "{} trailing bytes after end section",
            r.remaining()
        )));
    }
    match (params, state) {
        (Some(params), Some(state)) => Ok(Snapshot { params, state }),
        (None, _) => Err(r.corrupt("missing params section")),
        (_, None) => Err(r.corrupt("missing state section")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_reference_vectors() {
        // Standard IEEE check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32_extend_and_combine_agree_with_concatenation() {
        let data: Vec<u8> = (0..512u32)
            .map(|i| (i.wrapping_mul(167) >> 3) as u8)
            .collect();
        for cut in [0usize, 1, 7, 64, 255, 511, 512] {
            let (a, b) = data.split_at(cut);
            let whole = crc32(&data);
            assert_eq!(crc32_extend(crc32(a), b), whole, "extend cut {cut}");
            assert_eq!(
                crc32_combine(crc32(a), crc32(b), b.len() as u64),
                whole,
                "combine cut {cut}"
            );
        }
        // Empty-prefix and empty-suffix identities.
        assert_eq!(crc32_extend(0, b"xyz"), crc32(b"xyz"));
        assert_eq!(crc32_combine(crc32(b"xyz"), 0, 0), crc32(b"xyz"));
        assert_eq!(crc32_combine(0, crc32(b"xyz"), 3), crc32(b"xyz"));
    }

    #[test]
    fn varint_exact_rejects_lossy_values() {
        assert_eq!(varint_exact(7.0), Some(7));
        assert_eq!(varint_exact(0.0), Some(0));
        assert_eq!(varint_exact((1u64 << 53) as f64), None); // cap
        assert_eq!(varint_exact(-0.0), None); // sign bit would be lost
        assert_eq!(varint_exact(0.5), None);
        assert_eq!(varint_exact(-3.0), None);
        assert_eq!(varint_exact(f64::NAN), None);
        assert_eq!(varint_exact(f64::INFINITY), None);
    }

    fn roundtrip(value: &Value) {
        let bytes = encode_value_to_vec(value);
        let back = decode_section_value(&bytes, "snapshot").unwrap();
        assert_eq!(&back, value, "{bytes:?}");
    }

    #[test]
    fn value_round_trips_cover_every_tag() {
        roundtrip(&Value::Null);
        roundtrip(&Value::Bool(true));
        roundtrip(&Value::Bool(false));
        roundtrip(&Value::Number(std::f64::consts::PI));
        roundtrip(&Value::Number(-0.0));
        roundtrip(&Value::String("snapshot ≠ text".into()));
        roundtrip(&Value::Array(vec![])); // empty array takes the generic tag
        roundtrip(&Value::Array(vec![
            Value::Number(1.0),
            Value::Number(2.0),
            Value::Number(40_000.0),
        ])); // dense integer array
        roundtrip(&Value::Array(vec![
            Value::Number(0.25),
            Value::Number(-7.5),
        ])); // dense f64
        roundtrip(&Value::Array(vec![
            Value::Number(1.0),
            Value::String("mixed".into()),
            Value::Null,
        ])); // generic
        let mut map = serde::Map::new();
        map.insert("a".into(), Value::Number(1.5));
        map.insert("b".into(), Value::Array(vec![Value::Bool(false)]));
        roundtrip(&Value::Object(map));
    }

    #[test]
    fn packed_int_arrays_round_trip_at_every_width() {
        // Each width class: all-equal, boundary values, and a mix long
        // enough to cross byte boundaries at every shift.
        for max in [0u64, 1, 2, 7, 100, 1023, 1 << 20, (1 << 53) - 1] {
            for len in [1usize, 3, 8, 17, 64] {
                let ids: Vec<u64> = (0..len as u64)
                    .map(|i| (i * 2_654_435_761) % (max + 1))
                    .collect();
                let array = Value::Array(ids.iter().map(|&v| Value::Number(v as f64)).collect());
                roundtrip(&array);
            }
        }
    }

    #[test]
    fn binary_attribute_rows_pack_near_one_bit_per_value() {
        // 0/1 feature vectors (the CelebA-style workload) must land on the
        // bit-packed tag: 256 values in ~33 payload bytes, not 256 varints.
        let bits: Vec<Value> = (0..256).map(|i| Value::Number(f64::from(i % 2))).collect();
        let encoded = encode_value_to_vec(&Value::Array(bits.clone()));
        assert!(encoded.len() < 40, "{} bytes for 256 bits", encoded.len());
        let back = decode_section_value(&encoded, "snapshot").unwrap();
        assert_eq!(back, Value::Array(bits));
    }

    #[test]
    fn dense_f64_is_bit_exact() {
        let values = [0.1, 1.0 / 3.0, f64::MIN_POSITIVE, 1e300, -0.0, 2.5e-17];
        let array = Value::Array(values.iter().map(|&v| Value::Number(v)).collect());
        let bytes = encode_value_to_vec(&array);
        let back = decode_section_value(&bytes, "snapshot").unwrap();
        let back = back.as_array().unwrap();
        for (orig, decoded) in values.iter().zip(back) {
            assert_eq!(orig.to_bits(), decoded.as_f64().unwrap().to_bits());
        }
    }

    #[test]
    fn truncated_and_oversized_counts_are_typed_errors() {
        // A varint length far past the buffer must fail the count guard,
        // not size an allocation.
        let mut bytes = vec![TAG_STRING];
        put_varint(&mut bytes, u64::MAX / 2);
        let err = decode_section_value(&bytes, "snapshot").unwrap_err();
        assert!(matches!(err, FdmError::CorruptSnapshot { .. }), "{err}");

        let good = encode_value_to_vec(&Value::String("hello".into()));
        for cut in 0..good.len() {
            let err = decode_section_value(&good[..cut], "snapshot").unwrap_err();
            assert!(matches!(err, FdmError::CorruptSnapshot { .. }), "cut {cut}");
        }
    }
}
