//! Feature-gated parallel helpers.
//!
//! With the `parallel` cargo feature the independent per-guess work of the
//! streaming algorithms (batch probing, per-guess post-processing, and
//! per-shard ingestion) fans out over rayon's persistent pool; without it
//! everything runs inline. Both paths iterate in index order and the
//! parallel map preserves result order, so outputs are **identical**
//! regardless of the feature or the runtime `sequential` toggle (checked by
//! `tests/parallel_determinism.rs`).
//!
//! Both cfg variants of every helper carry the **same bounds** (`O: Send`,
//! `F: Sync`, …). The sequential fallbacks don't need them, but looser
//! bounds let feature-gated callers drift until the first `--features
//! parallel` build breaks; the unit tests below compile-test the
//! equivalence through a bound-pinning generic shim.

/// Whether batch fan-out can actually run concurrently: the `parallel`
/// feature is enabled *and* rayon's persistent pool exists (more than one
/// worker). When false, the batch entry points fall back to the memoized
/// element-by-element path, which is faster than candidate-major probing on
/// a single thread — results are identical either way.
#[cfg(feature = "parallel")]
pub(crate) fn parallel_available() -> bool {
    rayon::current_num_threads() > 1
}

/// Sequential build: concurrency is never available.
#[cfg(not(feature = "parallel"))]
pub(crate) fn parallel_available() -> bool {
    false
}

/// Maps `0..n` through `f`, in parallel when the `parallel` feature is on
/// and `sequential` is false. Results are in index order either way.
#[cfg(feature = "parallel")]
pub(crate) fn maybe_par_map<O, F>(sequential: bool, n: usize, f: F) -> Vec<O>
where
    O: Send,
    F: Fn(usize) -> O + Sync,
{
    if sequential || n < 2 {
        (0..n).map(f).collect()
    } else {
        use rayon::prelude::*;
        (0..n).into_par_iter().map(f).collect()
    }
}

/// Sequential fallback used when the `parallel` feature is disabled.
/// Signature-identical to the parallel variant (see the module docs).
#[cfg(not(feature = "parallel"))]
pub(crate) fn maybe_par_map<O, F>(sequential: bool, n: usize, f: F) -> Vec<O>
where
    O: Send,
    F: Fn(usize) -> O + Sync,
{
    let _ = sequential;
    (0..n).map(f).collect()
}

/// Consumes `items`, applying `f` to each — in parallel when the `parallel`
/// feature is on and `sequential` is false. Used for mutable fan-out where
/// each item owns disjoint state (e.g. one shard plus its sub-batch).
#[cfg(feature = "parallel")]
pub(crate) fn maybe_par_for_each<T, F>(sequential: bool, items: Vec<T>, f: F)
where
    T: Send,
    F: Fn(T) + Sync,
{
    if sequential || items.len() < 2 {
        items.into_iter().for_each(f);
    } else {
        use rayon::prelude::*;
        items.into_par_iter().for_each(f);
    }
}

/// Sequential fallback used when the `parallel` feature is disabled.
/// Signature-identical to the parallel variant (see the module docs).
#[cfg(not(feature = "parallel"))]
pub(crate) fn maybe_par_for_each<T, F>(sequential: bool, items: Vec<T>, f: F)
where
    T: Send,
    F: Fn(T) + Sync,
{
    let _ = sequential;
    items.into_iter().for_each(f);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    // Compile-test for the signature contract: these shims pin the exact
    // bounds (`O: Send`, `F: Sync`, …) on *both* cfg variants. If a future
    // edit loosens the sequential fallback, code written against it would
    // stop compiling here first — under either feature configuration —
    // instead of breaking only `--features parallel` builds.
    fn map_shim<O: Send, F: Fn(usize) -> O + Sync>(sequential: bool, n: usize, f: F) -> Vec<O> {
        maybe_par_map(sequential, n, f)
    }

    fn for_each_shim<T: Send, F: Fn(T) + Sync>(sequential: bool, items: Vec<T>, f: F) {
        maybe_par_for_each(sequential, items, f);
    }

    #[test]
    fn map_preserves_index_order_both_modes() {
        for sequential in [false, true] {
            let out = map_shim(sequential, 100, |i| i * 3);
            assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn for_each_visits_every_item_both_modes() {
        for sequential in [false, true] {
            let sum = AtomicUsize::new(0);
            for_each_shim(sequential, (1..=10).collect(), |x: usize| {
                sum.fetch_add(x, Ordering::SeqCst);
            });
            assert_eq!(sum.load(Ordering::SeqCst), 55);
        }
    }

    #[test]
    fn degenerate_sizes() {
        assert!(map_shim(false, 0, |i| i).is_empty());
        assert_eq!(map_shim(false, 1, |i| i + 7), vec![7]);
        for_each_shim(false, Vec::<usize>::new(), |_| {});
    }
}
