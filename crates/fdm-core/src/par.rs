//! Feature-gated parallel helpers.
//!
//! With the `parallel` cargo feature the independent per-guess work of the
//! streaming algorithms (batch probing and post-processing) fans out over
//! rayon; without it everything runs inline. Both paths iterate in index
//! order and the parallel map preserves result order, so outputs are
//! **identical** regardless of the feature or the runtime `sequential`
//! toggle (checked by `tests/parallel_determinism.rs`).

/// Maps `0..n` through `f`, in parallel when the `parallel` feature is on
/// and `sequential` is false. Results are in index order either way.
#[cfg(feature = "parallel")]
pub(crate) fn maybe_par_map<O, F>(sequential: bool, n: usize, f: F) -> Vec<O>
where
    O: Send,
    F: Fn(usize) -> O + Sync,
{
    if sequential || n < 2 {
        (0..n).map(f).collect()
    } else {
        use rayon::prelude::*;
        (0..n).into_par_iter().map(f).collect()
    }
}

/// Sequential fallback used when the `parallel` feature is disabled.
#[cfg(not(feature = "parallel"))]
pub(crate) fn maybe_par_map<O, F>(sequential: bool, n: usize, f: F) -> Vec<O>
where
    F: Fn(usize) -> O,
{
    let _ = sequential;
    (0..n).map(f).collect()
}
