//! A small blocking client for the `fdm-serve` line protocol.
//!
//! [`Client`] wraps one connection — TCP or Unix socket — behind the typed
//! [`Request`]/[`Response`] grammar: render a
//! request, write the line, read the reply line, parse it (and, for
//! `MERGE`, read the announced binary tail). Raw line-level escape hatches
//! ([`Client::send_line`] / [`Client::read_reply_line`] /
//! [`Client::roundtrip`]) stay public for tests that deliberately speak
//! malformed or oversized lines.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::Duration;

use fdm_core::persist::SnapshotFormat;
use fdm_core::point::Element;
use fdm_core::solution::Solution;

use crate::protocol::{ErrorReply, Payload, QueryReply, Request, Response, StreamSpec};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed (connect, read, write, timeout, EOF).
    Io(std::io::Error),
    /// The server's reply did not parse as protocol grammar.
    Protocol(String),
    /// The server answered `ERR ...` — a typed, successful round trip.
    Server(ErrorReply),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Protocol(detail) => write!(f, "protocol error: {detail}"),
            ClientError::Server(err) => write!(f, "server error: {err}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// A result specialized to [`ClientError`].
pub type Result<T> = std::result::Result<T, ClientError>;

/// One transport: TCP or Unix socket, split into a buffered reader and a
/// writer over `try_clone`d handles.
enum Transport {
    Tcp {
        reader: BufReader<TcpStream>,
        writer: TcpStream,
    },
    Unix {
        reader: BufReader<UnixStream>,
        writer: UnixStream,
    },
}

/// A blocking protocol client over one connection.
///
/// The client owns one reusable write buffer and one reusable reply-line
/// buffer, so the steady-state command loop (the coordinator's per-element
/// insert path, a bench driving millions of inserts) allocates nothing per
/// round trip.
pub struct Client {
    transport: Transport,
    /// Reused render buffer for outgoing request lines.
    write_buf: String,
    /// Reused buffer for incoming reply lines.
    line_buf: String,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.transport {
            Transport::Tcp { .. } => write!(f, "Client(tcp)"),
            Transport::Unix { .. } => write!(f, "Client(unix)"),
        }
    }
}

impl Client {
    /// Connects over TCP. Nagle's algorithm is disabled: the protocol is
    /// strictly request/reply, so there is never a follow-up write to
    /// coalesce with — leaving it on serializes every round trip against
    /// the peer's delayed-ACK timer.
    pub fn connect_tcp(addr: impl ToSocketAddrs) -> Result<Client> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client::over(Transport::Tcp { reader, writer }))
    }

    fn over(transport: Transport) -> Client {
        Client {
            transport,
            write_buf: String::new(),
            line_buf: String::new(),
        }
    }

    /// Connects over TCP, retrying with doubling backoff — the
    /// coordinator's worker-(re)connect path. `attempts` counts total
    /// tries; the first retry sleeps `initial_backoff`.
    pub fn connect_tcp_retry(
        addr: impl ToSocketAddrs + Clone,
        attempts: usize,
        initial_backoff: Duration,
    ) -> Result<Client> {
        let mut backoff = initial_backoff;
        let mut last = None;
        for attempt in 0..attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(backoff);
                backoff *= 2;
            }
            match Client::connect_tcp(addr.clone()) {
                Ok(client) => return Ok(client),
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| {
            ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "zero connect attempts",
            ))
        }))
    }

    /// Connects over a Unix socket.
    pub fn connect_unix(path: impl AsRef<Path>) -> Result<Client> {
        let writer = UnixStream::connect(path)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client::over(Transport::Unix { reader, writer }))
    }

    /// Bounds every subsequent read (`None` = block forever).
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> Result<()> {
        match &self.transport {
            Transport::Tcp { writer, .. } => writer.set_read_timeout(timeout)?,
            Transport::Unix { writer, .. } => writer.set_read_timeout(timeout)?,
        }
        Ok(())
    }

    /// Writes one raw line (newline appended) and flushes.
    pub fn send_line(&mut self, line: &str) -> Result<()> {
        match &mut self.transport {
            Transport::Tcp { writer, .. } => {
                writer.write_all(line.as_bytes())?;
                writer.write_all(b"\n")?;
                writer.flush()?;
            }
            Transport::Unix { writer, .. } => {
                writer.write_all(line.as_bytes())?;
                writer.write_all(b"\n")?;
                writer.flush()?;
            }
        }
        Ok(())
    }

    /// Reads one reply line, without its trailing newline. EOF is an
    /// [`ClientError::Io`] with [`std::io::ErrorKind::UnexpectedEof`].
    pub fn read_reply_line(&mut self) -> Result<String> {
        self.fill_reply_line()?;
        Ok(self.line_buf.clone())
    }

    /// Reads one reply line into the reused `line_buf` (trailing newline
    /// stripped) — the allocation-free core of [`Client::read_reply_line`].
    fn fill_reply_line(&mut self) -> Result<()> {
        self.line_buf.clear();
        let n = match &mut self.transport {
            Transport::Tcp { reader, .. } => reader.read_line(&mut self.line_buf)?,
            Transport::Unix { reader, .. } => reader.read_line(&mut self.line_buf)?,
        };
        if n == 0 {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        while self.line_buf.ends_with('\n') || self.line_buf.ends_with('\r') {
            self.line_buf.pop();
        }
        Ok(())
    }

    fn read_exact(&mut self, buf: &mut [u8]) -> Result<()> {
        match &mut self.transport {
            Transport::Tcp { reader, .. } => reader.read_exact(buf)?,
            Transport::Unix { reader, .. } => reader.read_exact(buf)?,
        }
        Ok(())
    }

    /// Raw line round trip: send, read one reply line back verbatim
    /// (including its `OK `/`ERR ` prefix). For tests that assert exact
    /// wire bytes.
    pub fn roundtrip(&mut self, line: &str) -> Result<String> {
        self.send_line(line)?;
        self.read_reply_line()
    }

    /// One typed round trip: render the request (into the reused write
    /// buffer), read and parse the reply. `ERR` replies surface as
    /// [`ClientError::Server`]; a `MERGE` reply's binary tail is read into
    /// the returned payload.
    pub fn request(&mut self, request: &Request) -> Result<Payload> {
        self.write_buf.clear();
        request.render_into(&mut self.write_buf);
        self.write_buf.push('\n');
        match &mut self.transport {
            Transport::Tcp { writer, .. } => {
                writer.write_all(self.write_buf.as_bytes())?;
                writer.flush()?;
            }
            Transport::Unix { writer, .. } => {
                writer.write_all(self.write_buf.as_bytes())?;
                writer.flush()?;
            }
        }
        self.fill_reply_line()?;
        match Response::parse(&self.line_buf).map_err(ClientError::Protocol)? {
            Response::Ok(Payload::Merge {
                algorithm,
                processed,
                mut bytes,
            }) => {
                // `Response::parse` pre-sized `bytes` to the announced
                // length; fill it from the wire.
                self.read_exact(&mut bytes)?;
                Ok(Payload::Merge {
                    algorithm,
                    processed,
                    bytes,
                })
            }
            Response::Ok(Payload::MergeSince {
                algorithm,
                processed,
                delta,
                epoch,
                crc,
                mut bytes,
            }) => {
                self.read_exact(&mut bytes)?;
                Ok(Payload::MergeSince {
                    algorithm,
                    processed,
                    delta,
                    epoch,
                    crc,
                    bytes,
                })
            }
            Response::Ok(payload) => Ok(payload),
            Response::Err(err) => Err(ClientError::Server(err)),
        }
    }

    fn expect<T>(
        &mut self,
        request: &Request,
        extract: impl FnOnce(Payload) -> std::result::Result<T, Payload>,
    ) -> Result<T> {
        let payload = self.request(request)?;
        extract(payload)
            .map_err(|other| ClientError::Protocol(format!("unexpected reply payload: {other:?}")))
    }

    /// `AUTH <token>`.
    pub fn auth(&mut self, token: &str) -> Result<()> {
        self.expect(
            &Request::Auth {
                token: token.to_string(),
            },
            |p| match p {
                Payload::Authenticated | Payload::AuthNotRequired => Ok(()),
                other => Err(other),
            },
        )
    }

    /// `OPEN <name> <spec>` — returns the arrivals already processed (0
    /// for a fresh stream, the stream position on re-attach).
    pub fn open(&mut self, name: &str, spec: &StreamSpec) -> Result<usize> {
        self.expect(
            &Request::Open {
                name: name.to_string(),
                spec: spec.clone(),
            },
            |p| match p {
                Payload::Opened { .. } => Ok(0),
                Payload::Attached { processed, .. } => Ok(processed),
                other => Err(other),
            },
        )
    }

    /// `INSERT` one element — returns its sequence number.
    pub fn insert(&mut self, element: &Element) -> Result<usize> {
        self.expect(&Request::Insert(element.clone()), |p| match p {
            Payload::Inserted { seq } => Ok(seq),
            other => Err(other),
        })
    }

    /// `INSERTB` a batch of elements in one round trip — returns
    /// `(stream position after the batch, elements acknowledged)`.
    pub fn insert_batch(&mut self, elements: &[Element]) -> Result<(usize, usize)> {
        self.expect(&Request::InsertBatch(elements.to_vec()), |p| match p {
            Payload::InsertedBatch { seq, count } => Ok((seq, count)),
            other => Err(other),
        })
    }

    /// `QUERY [k]`.
    pub fn query(&mut self, k: Option<usize>) -> Result<QueryReply> {
        self.expect(&Request::Query { k }, |p| match p {
            Payload::Query(reply) => Ok(reply),
            other => Err(other),
        })
    }

    /// `MERGE` — pulls the bound stream's summary as a v2 binary snapshot
    /// frame: `(algorithm, processed, frame bytes)`.
    pub fn merge(&mut self) -> Result<(String, usize, Vec<u8>)> {
        self.expect(&Request::Merge { since: None }, |p| match p {
            Payload::Merge {
                algorithm,
                processed,
                bytes,
            } => Ok((algorithm, processed, bytes)),
            other => Err(other),
        })
    }

    /// `MERGE since=<epoch>:<crc>` — pulls the bound stream's summary
    /// incrementally: the server ships an `FDMDELT2` delta frame when the
    /// named base still matches its export cursor, a fresh full frame
    /// otherwise. The returned frame's `epoch`/`crc` anchor the next call.
    pub fn merge_since(&mut self, since: (u64, u32)) -> Result<MergeFrame> {
        self.expect(&Request::Merge { since: Some(since) }, |p| match p {
            Payload::MergeSince {
                algorithm,
                processed,
                delta,
                epoch,
                crc,
                bytes,
            } => Ok(MergeFrame {
                algorithm,
                processed,
                delta,
                epoch,
                crc,
                bytes,
            }),
            other => Err(other),
        })
    }

    /// `STATS` — the pre-rendered stats line (field set in `docs/serve.md`).
    pub fn stats(&mut self) -> Result<String> {
        self.expect(&Request::Stats, |p| match p {
            Payload::Stats(line) => Ok(line),
            other => Err(other),
        })
    }

    /// `SNAPSHOT <path> [format=...]` — returns the arrivals captured.
    pub fn snapshot(&mut self, path: &str, format: Option<SnapshotFormat>) -> Result<usize> {
        self.expect(
            &Request::Snapshot {
                path: path.to_string(),
                format,
            },
            |p| match p {
                Payload::SnapshotWritten { processed, .. } => Ok(processed),
                other => Err(other),
            },
        )
    }

    /// `RESTORE <path>` — returns `(stream name, arrivals restored)`.
    pub fn restore(&mut self, path: &str) -> Result<(String, usize)> {
        self.expect(
            &Request::Restore {
                path: path.to_string(),
            },
            |p| match p {
                Payload::Restored { name, processed } => Ok((name, processed)),
                other => Err(other),
            },
        )
    }

    /// `PING`.
    pub fn ping(&mut self) -> Result<()> {
        self.expect(&Request::Ping, |p| match p {
            Payload::Pong => Ok(()),
            other => Err(other),
        })
    }

    /// `QUIT` — consumes the client (the server closes after `bye`).
    pub fn quit(mut self) -> Result<()> {
        self.expect(&Request::Quit, |p| match p {
            Payload::Bye => Ok(()),
            other => Err(other),
        })
    }
}

/// A typed `MERGE since=` reply: one exported frame plus the cache anchor
/// for the next incremental round trip.
#[derive(Debug, Clone)]
pub struct MergeFrame {
    /// Algorithm tag of the exported summary.
    pub algorithm: String,
    /// Arrivals captured by the exported summary.
    pub processed: usize,
    /// `true` — `bytes` is an `FDMDELT2` delta against the requested base;
    /// `false` — a fresh full `FDMSNAP2` snapshot frame.
    pub delta: bool,
    /// Export-cursor epoch (bumped on every full re-anchor).
    pub epoch: u64,
    /// CRC32 of the exported state; pass `(epoch, crc)` as the next
    /// `since`.
    pub crc: u32,
    /// The binary frame.
    pub bytes: Vec<u8>,
}

/// Decodes a `MERGE` frame back into a live summary and finalizes it —
/// a convenience for consumers that want the solution, not the bytes.
pub fn solution_of_merge_frame(bytes: &[u8]) -> std::result::Result<Solution, String> {
    let snapshot = fdm_core::persist::Snapshot::from_bytes(bytes).map_err(|e| e.to_string())?;
    let summary = fdm_core::streaming::summary::restore(&snapshot).map_err(|e| e.to_string())?;
    summary.finalize().map_err(|e| e.to_string())
}
