//! Typed client for the `fdm-serve` line protocol.
//!
//! Two halves:
//!
//! * [`protocol`] — the shared grammar: [`protocol::Request`] /
//!   [`protocol::Response`] with one `parse`/`render` pair used by **both**
//!   sides of the wire. `fdm-serve` renders every reply through
//!   [`protocol::Response::render`]; this crate parses them back. A grammar
//!   bug therefore breaks a round-trip test, not a production coordinator.
//! * [`client`] — a small blocking client ([`client::Client`]) over TCP or
//!   Unix sockets: connect (with retry/backoff), AUTH, OPEN, INSERT,
//!   QUERY, MERGE, STATS. The `fdm-serve` coordinator mode is its first
//!   in-repo consumer; the protocol test suites are the second.
//!
//! The wire format itself (one command line in, one `OK ...`/`ERR ...`
//! line out, plus the `MERGE` binary tail) is documented in
//! `docs/serve.md` and `docs/distributed.md`.

#![deny(unsafe_code)]

pub mod client;
pub mod protocol;

pub use client::{Client, ClientError, MergeFrame};
pub use protocol::{ErrorKind, ErrorReply, Payload, QueryReply, Request, Response, StreamSpec};
