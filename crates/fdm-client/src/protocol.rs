//! The line protocol: one grammar, both sides of the wire.
//!
//! One command per line, fields separated by whitespace, one `OK ...` or
//! `ERR ...` response line per command (`MERGE` additionally streams a raw
//! binary tail after its header line). The grammar is documented in
//! `docs/serve.md`; parsing **and rendering** live here so the server's
//! session loop, the WAL replayer, the coordinator, the client, and the
//! tests all share one implementation:
//!
//! * [`Request`] — a parsed command. The server parses requests with
//!   [`parse_line`]; the client renders them with [`Request::render`].
//! * [`Response`] — a typed reply: [`Payload`] on success, [`ErrorReply`]
//!   on failure. The server renders replies with [`Response::render`] (the
//!   only place an `OK `/`ERR ` line may be formatted — CI greps for
//!   strays); the client parses them with [`Response::parse`].
//!
//! Both directions round-trip: `parse(render(x)) == x` byte-for-byte, so
//! a reply relayed through the coordinator is indistinguishable from one
//! answered locally.

use fdm_core::metric::Metric;
use fdm_core::persist::SnapshotFormat;
use fdm_core::point::Element;

/// Upper bound on a `MERGE` reply's announced binary tail. Far above any
/// real summary (summaries are sublinear in the stream), low enough that a
/// corrupt header cannot OOM the client.
pub const MAX_MERGE_BYTES: usize = 256 << 20;

/// A parsed protocol command.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// `OPEN <name> <algo> key=value...` — create (or re-attach to) a named
    /// stream.
    Open {
        /// Stream name (`[A-Za-z0-9_-]+`).
        name: String,
        /// Algorithm + parameters.
        spec: StreamSpec,
    },
    /// `INSERT <id> <group> <x1> ... <xd>` — feed one stream element.
    Insert(Element),
    /// `INSERTB <elem> | <elem> | ...` — feed a batch of elements in one
    /// round trip (each `<elem>` is an `INSERT` tail, `|`-separated). The
    /// batch is applied in order and atomically WAL-logged on a durable
    /// worker; the reply acknowledges the whole batch at once.
    InsertBatch(Vec<Element>),
    /// `QUERY [k]` — run post-processing and return the current solution.
    Query {
        /// Optional solution size; must match the configured `k`.
        k: Option<usize>,
    },
    /// `SNAPSHOT <path> [format=json|bin]` — checkpoint the bound stream
    /// to a file.
    Snapshot {
        /// Destination path.
        path: String,
        /// Explicit encoding; `None` uses the server's configured format.
        format: Option<SnapshotFormat>,
    },
    /// `RESTORE <path>` — load a snapshot into the session.
    Restore {
        /// Source path.
        path: String,
    },
    /// `STATS` — processed/stored counters of the bound stream.
    Stats,
    /// `MERGE [since=<epoch>:<crc>]` — export the bound stream's summary
    /// as an inline binary frame (header line + raw byte tail). The
    /// coordinator's QUERY fan-out pulls worker summaries through this
    /// verb. The plain form always ships a full v2 snapshot frame; the
    /// `since=` form names the caller's cached base (the `epoch`/`crc`
    /// pair from a previous `MERGE since=` reply) and lets the server
    /// answer with an incremental `FDMDELT2` delta frame when the base
    /// still matches its export cursor — or a fresh full frame otherwise.
    Merge {
        /// Cached-base identity from the previous `MERGE since=` reply;
        /// `None` requests the version-1 full-frame reply shape.
        since: Option<(u64, u32)>,
    },
    /// `AUTH <token>` — authenticate the session (required first when the
    /// server runs with `--auth-token`).
    Auth {
        /// The presented token.
        token: String,
    },
    /// `PING` — liveness check.
    Ping,
    /// `QUIT` — end the session.
    Quit,
}

impl Request {
    /// Renders the command back to its wire line (no trailing newline).
    /// Inverse of [`parse_line`]: `parse_line(&r.render()) == Ok(Some(r))`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    /// Appends the wire line to `out` (no trailing newline) — the
    /// allocation-free form of [`Request::render`], used by clients that
    /// reuse one write buffer per connection.
    pub fn render_into(&self, out: &mut String) {
        use std::fmt::Write as _;
        match self {
            Request::Open { name, spec } => {
                let _ = write!(out, "OPEN {name} {}", spec.render());
            }
            Request::Insert(e) => render_insert_tail("INSERT", e, out),
            Request::InsertBatch(elements) => {
                out.push_str("INSERTB");
                for (i, e) in elements.iter().enumerate() {
                    if i > 0 {
                        out.push_str(" |");
                    }
                    render_insert_tail("", e, out);
                }
            }
            Request::Query { k: None } => out.push_str("QUERY"),
            Request::Query { k: Some(k) } => {
                let _ = write!(out, "QUERY {k}");
            }
            Request::Snapshot { path, format } => match format {
                None => {
                    let _ = write!(out, "SNAPSHOT {path}");
                }
                Some(f) => {
                    let _ = write!(out, "SNAPSHOT {path} format={}", format_token(*f));
                }
            },
            Request::Restore { path } => {
                let _ = write!(out, "RESTORE {path}");
            }
            Request::Stats => out.push_str("STATS"),
            Request::Merge { since: None } => out.push_str("MERGE"),
            Request::Merge {
                since: Some((epoch, crc)),
            } => {
                let _ = write!(out, "MERGE since={epoch}:{crc:08x}");
            }
            Request::Auth { token } => {
                let _ = write!(out, "AUTH {token}");
            }
            Request::Ping => out.push_str("PING"),
            Request::Quit => out.push_str("QUIT"),
        }
    }
}

/// Appends `<verb> <id> <group> <x1> ... <xd>` to `out` (the shared tail
/// shape of `INSERT` and each `INSERTB` batch entry; an empty verb appends
/// just the fields, each space-prefixed).
fn render_insert_tail(verb: &str, e: &Element, out: &mut String) {
    use std::fmt::Write as _;
    out.push_str(verb);
    let _ = write!(out, " {} {}", e.id, e.group);
    for x in e.point.iter() {
        let _ = write!(out, " {x}");
    }
}

/// Algorithm choice + parameters from an `OPEN` command.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamSpec {
    /// A base algorithm tag the summary registry knows:
    /// `unconstrained`, `sfdm1`, `sfdm2`, or `sliding`.
    pub algo: String,
    /// Guess-ladder accuracy `ε ∈ (0, 1)`.
    pub epsilon: f64,
    /// Lower distance bound `d_min > 0`.
    pub dmin: f64,
    /// Upper distance bound `d_max ≥ d_min`.
    pub dmax: f64,
    /// Distance metric (default Euclidean).
    pub metric: Metric,
    /// Per-group quotas (fair algorithms); empty for `unconstrained`.
    pub quotas: Vec<usize>,
    /// Solution size for `unconstrained` (`Σ quotas` otherwise).
    pub k: usize,
    /// Shard count (default 1 = unsharded).
    pub shards: usize,
    /// Sliding-window size `W` (required for `sliding`, rejected
    /// elsewhere; 0 = not windowed).
    pub window: usize,
}

/// Whether a stream name is safe to bind (and to embed in data-dir file
/// names): ASCII alphanumerics, `_`, `-`, non-empty.
pub fn valid_stream_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
}

fn parse_metric(text: &str) -> std::result::Result<Metric, String> {
    match text {
        "euclidean" => Ok(Metric::Euclidean),
        "manhattan" => Ok(Metric::Manhattan),
        "chebyshev" => Ok(Metric::Chebyshev),
        "angular" => Ok(Metric::Angular),
        other => {
            if let Some(p) = other.strip_prefix("minkowski:") {
                let p: f64 = p
                    .parse()
                    .map_err(|_| format!("invalid Minkowski order `{p}`"))?;
                Ok(Metric::Minkowski(p))
            } else {
                Err(format!(
                    "unknown metric `{other}` (expected euclidean, manhattan, \
                     chebyshev, angular, or minkowski:<p>)"
                ))
            }
        }
    }
}

fn render_metric(metric: &Metric) -> String {
    match metric {
        Metric::Euclidean => "euclidean".to_string(),
        Metric::Manhattan => "manhattan".to_string(),
        Metric::Chebyshev => "chebyshev".to_string(),
        Metric::Angular => "angular".to_string(),
        Metric::Minkowski(p) => format!("minkowski:{p}"),
    }
}

/// The wire token of a snapshot format (`format=` value, STATS/SNAPSHOT
/// reply field).
pub fn format_token(format: SnapshotFormat) -> &'static str {
    match format {
        SnapshotFormat::Json => "json",
        SnapshotFormat::Binary => "bin",
    }
}

impl StreamSpec {
    /// Parses the `<algo> key=value...` tail of an `OPEN` command. The
    /// algorithm name is validated against the summary registry, so a new
    /// registered algorithm is automatically OPEN-able.
    pub fn parse(fields: &[&str]) -> std::result::Result<StreamSpec, String> {
        let algo = *fields.first().ok_or("OPEN requires an algorithm")?;
        if !fdm_core::streaming::summary::is_known_algorithm(algo) {
            return Err(format!(
                "unknown algorithm `{algo}` (expected one of: {})",
                fdm_core::streaming::summary::algorithm_tags().join(", ")
            ));
        }
        let mut epsilon = None;
        let mut dmin = None;
        let mut dmax = None;
        let mut metric = Metric::Euclidean;
        let mut quotas: Vec<usize> = Vec::new();
        let mut k: Option<usize> = None;
        let mut shards = 1usize;
        let mut window: Option<usize> = None;
        for field in &fields[1..] {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, found `{field}`"))?;
            let bad = |what: &str| format!("invalid {what} `{value}`");
            match key {
                "eps" => epsilon = Some(value.parse::<f64>().map_err(|_| bad("eps"))?),
                "dmin" => dmin = Some(value.parse::<f64>().map_err(|_| bad("dmin"))?),
                "dmax" => dmax = Some(value.parse::<f64>().map_err(|_| bad("dmax"))?),
                "metric" => metric = parse_metric(value)?,
                "quotas" => {
                    quotas = value
                        .split(',')
                        .map(|q| q.parse::<usize>().map_err(|_| bad("quotas")))
                        .collect::<std::result::Result<_, _>>()?;
                }
                "k" => k = Some(value.parse::<usize>().map_err(|_| bad("k"))?),
                "shards" => shards = value.parse::<usize>().map_err(|_| bad("shards"))?,
                "window" => window = Some(value.parse::<usize>().map_err(|_| bad("window"))?),
                other => return Err(format!("unknown OPEN parameter `{other}`")),
            }
        }
        let epsilon = epsilon.ok_or("OPEN requires eps=<f>")?;
        let dmin = dmin.ok_or("OPEN requires dmin=<f>")?;
        let dmax = dmax.ok_or("OPEN requires dmax=<f>")?;
        let k = match (algo, k, quotas.is_empty()) {
            ("unconstrained", Some(k), true) => k,
            ("unconstrained", None, _) => return Err("unconstrained requires k=<n>".into()),
            ("unconstrained", _, false) => {
                return Err("unconstrained takes k=<n>, not quotas".into())
            }
            (_, Some(_), _) => {
                return Err(format!("{algo} takes quotas=a,b,..., not k (k = Σ quotas)"))
            }
            (_, None, true) => return Err(format!("{algo} requires quotas=a,b,...")),
            (_, None, false) => quotas.iter().sum(),
        };
        let window = match (algo, window) {
            ("sliding", Some(w)) if w >= 2 => w,
            ("sliding", Some(w)) => return Err(format!("sliding requires window ≥ 2 (got {w})")),
            ("sliding", None) => return Err("sliding requires window=<n>".into()),
            (_, Some(_)) => return Err(format!("{algo} takes no window= parameter")),
            (_, None) => 0,
        };
        Ok(StreamSpec {
            algo: algo.to_string(),
            epsilon,
            dmin,
            dmax,
            metric,
            quotas,
            k,
            shards,
            window,
        })
    }

    /// Translates the protocol-level specification into the summary
    /// registry's algorithm-agnostic
    /// [`SummarySpec`](fdm_core::streaming::summary::SummarySpec).
    pub fn to_summary_spec(
        &self,
    ) -> fdm_core::error::Result<fdm_core::streaming::summary::SummarySpec> {
        let bounds = fdm_core::dataset::DistanceBounds::new(self.dmin, self.dmax)?;
        Ok(fdm_core::streaming::summary::SummarySpec {
            algorithm: self.algo.clone(),
            epsilon: self.epsilon,
            bounds,
            metric: self.metric,
            quotas: self.quotas.clone(),
            k: self.k,
            shards: self.shards,
            window: self.window,
        })
    }

    /// Renders the spec back to the `<algo> key=value...` tail of an
    /// `OPEN` line. Inverse of [`StreamSpec::parse`].
    pub fn render(&self) -> String {
        let mut out = self.algo.clone();
        if self.quotas.is_empty() {
            out.push_str(&format!(" k={}", self.k));
        } else {
            let quotas: Vec<String> = self.quotas.iter().map(|q| q.to_string()).collect();
            out.push_str(&format!(" quotas={}", quotas.join(",")));
        }
        out.push_str(&format!(
            " eps={} dmin={} dmax={}",
            self.epsilon, self.dmin, self.dmax
        ));
        if self.metric != Metric::Euclidean {
            out.push_str(&format!(" metric={}", render_metric(&self.metric)));
        }
        if self.shards > 1 {
            out.push_str(&format!(" shards={}", self.shards));
        }
        if self.window != 0 {
            out.push_str(&format!(" window={}", self.window));
        }
        out
    }
}

/// Parses an `INSERT` tail (`<id> <group> <x1> ... <xd>`) into an element,
/// rejecting non-finite coordinates.
pub fn parse_insert(fields: &[&str]) -> std::result::Result<Element, String> {
    if fields.len() < 3 {
        return Err("INSERT requires <id> <group> <x1> [... <xd>]".to_string());
    }
    let id: usize = fields[0]
        .parse()
        .map_err(|_| format!("invalid element id `{}`", fields[0]))?;
    let group: usize = fields[1]
        .parse()
        .map_err(|_| format!("invalid group label `{}`", fields[1]))?;
    let point: Vec<f64> = fields[2..]
        .iter()
        .map(|f| {
            let x = f
                .parse::<f64>()
                .map_err(|_| format!("invalid coordinate `{f}`"))?;
            if !x.is_finite() {
                // Typed, distinct from a parse failure: NaN/±inf would
                // poison every distance this element touches and corrupt
                // snapshots downstream.
                return Err(format!(
                    "non-finite coordinate `{f}` (NaN and ±inf are rejected)"
                ));
            }
            Ok(x)
        })
        .collect::<std::result::Result<_, _>>()?;
    Ok(Element::new(id, point, group))
}

/// Parses one protocol line. Empty lines and `#` comments yield `None`.
pub fn parse_line(line: &str) -> std::result::Result<Option<Request>, String> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let fields: Vec<&str> = line.split_whitespace().collect();
    let verb = fields[0].to_ascii_uppercase();
    let command = match verb.as_str() {
        "OPEN" => {
            if fields.len() < 3 {
                return Err("OPEN requires <name> <algo> key=value...".into());
            }
            let name = fields[1].to_string();
            if !valid_stream_name(&name) {
                return Err(format!("invalid stream name `{name}` (use [A-Za-z0-9_-]+)"));
            }
            let spec = StreamSpec::parse(&fields[2..])?;
            Request::Open { name, spec }
        }
        "INSERT" => Request::Insert(parse_insert(&fields[1..])?),
        "INSERTB" => {
            let mut elements = Vec::new();
            for chunk in fields[1..].split(|f| *f == "|") {
                if chunk.is_empty() {
                    return Err(
                        "INSERTB requires `<id> <group> <x...>` entries separated by `|`".into(),
                    );
                }
                elements.push(parse_insert(chunk)?);
            }
            if elements.is_empty() {
                return Err("INSERTB requires at least one element".into());
            }
            Request::InsertBatch(elements)
        }
        "QUERY" => {
            let k = match fields.get(1) {
                None => None,
                Some(f) => Some(
                    f.parse::<usize>()
                        .map_err(|_| format!("invalid QUERY size `{f}`"))?,
                ),
            };
            Request::Query { k }
        }
        "SNAPSHOT" => {
            let path = fields.get(1).ok_or("SNAPSHOT requires a path")?.to_string();
            let format = match fields.get(2) {
                None => None,
                Some(field) => {
                    let value = field
                        .strip_prefix("format=")
                        .ok_or_else(|| format!("expected format=json|bin, found `{field}`"))?;
                    Some(SnapshotFormat::parse(value)?)
                }
            };
            if fields.len() > 3 {
                return Err("SNAPSHOT takes at most <path> format=json|bin".into());
            }
            Request::Snapshot { path, format }
        }
        "RESTORE" => Request::Restore {
            path: fields.get(1).ok_or("RESTORE requires a path")?.to_string(),
        },
        "STATS" => Request::Stats,
        "MERGE" => match fields.len() {
            1 => Request::Merge { since: None },
            2 => {
                let value = fields[1].strip_prefix("since=").ok_or_else(|| {
                    format!("expected since=<epoch>:<crc>, found `{}`", fields[1])
                })?;
                let (epoch, crc) = value.split_once(':').ok_or_else(|| {
                    format!("expected since=<epoch>:<crc>, found `{}`", fields[1])
                })?;
                let epoch: u64 = epoch
                    .parse()
                    .map_err(|_| format!("invalid since epoch `{epoch}`"))?;
                let crc = u32::from_str_radix(crc, 16)
                    .map_err(|_| format!("invalid since crc `{crc}`"))?;
                Request::Merge {
                    since: Some((epoch, crc)),
                }
            }
            _ => return Err("MERGE takes at most since=<epoch>:<crc>".into()),
        },
        "AUTH" => {
            if fields.len() != 2 {
                return Err("AUTH requires exactly one <token>".into());
            }
            Request::Auth {
                token: fields[1].to_string(),
            }
        }
        "PING" => Request::Ping,
        "QUIT" | "EXIT" => Request::Quit,
        other => return Err(format!("unknown command `{other}`")),
    };
    Ok(Some(command))
}

// --- Replies ---------------------------------------------------------------

/// A `QUERY` answer: solution size, the paper's diversity objective, and
/// the selected element ids.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryReply {
    /// Solution size (`k`).
    pub k: usize,
    /// The max-min diversity value of the solution.
    pub diversity: f64,
    /// Selected element ids, in solution order.
    pub ids: Vec<usize>,
}

/// The success payload of a reply — everything after `OK `.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// `opened <name>` — a fresh stream was created.
    Opened {
        /// The bound stream name.
        name: String,
    },
    /// `attached <name> processed=<n>` — re-attached to an existing stream.
    Attached {
        /// The bound stream name.
        name: String,
        /// Arrivals already processed by the stream.
        processed: usize,
    },
    /// `inserted processed=<n>` — one element accepted; `n` is its
    /// sequence number (the stream position after the insert).
    Inserted {
        /// Stream position after this insert.
        seq: usize,
    },
    /// `inserted processed=<n> count=<c>` — an `INSERTB` batch accepted:
    /// `c` elements acknowledged, stream position `n` after the batch.
    InsertedBatch {
        /// Stream position after the acknowledged batch prefix.
        seq: usize,
        /// Elements acknowledged by this reply.
        count: usize,
    },
    /// `k=<k> diversity=<f> ids=<a,b,...>` — a QUERY answer.
    Query(QueryReply),
    /// `snapshot <path> format=<json|bin> processed=<n>` — checkpoint
    /// written.
    SnapshotWritten {
        /// Destination path, as requested.
        path: String,
        /// Encoding actually used.
        format: SnapshotFormat,
        /// Arrivals captured by the checkpoint.
        processed: usize,
    },
    /// `restored <name> processed=<n>` — a snapshot was loaded and bound.
    Restored {
        /// The bound stream name (derived from the snapshot file stem).
        name: String,
        /// Arrivals restored.
        processed: usize,
    },
    /// `stream=<name> ...` — a STATS line (pre-rendered by the engine; the
    /// field set is documented in `docs/serve.md`).
    Stats(String),
    /// `merge algorithm=<tag> processed=<n> bytes=<len>` — a MERGE header.
    /// Exactly `len` raw bytes of a v2 binary snapshot frame follow the
    /// header line on the wire. [`Response::parse`] pre-sizes `bytes` to
    /// the announced length (zero-filled) so the client can `read_exact`
    /// straight into it.
    Merge {
        /// Algorithm tag of the exported summary.
        algorithm: String,
        /// Arrivals captured by the exported summary.
        processed: usize,
        /// The v2 binary snapshot frame.
        bytes: Vec<u8>,
    },
    /// `merge algorithm=<tag> processed=<n> kind=<full|delta> epoch=<e>
    /// crc=<hex> bytes=<len>` — the reply to `MERGE since=...`: like
    /// [`Payload::Merge`] (the raw frame follows the header line), but the
    /// frame is an incremental `FDMDELT2` delta against the caller's cached
    /// base when `kind=delta`, and `epoch`/`crc` name the exported state so
    /// the caller can anchor its cache for the next round trip.
    MergeSince {
        /// Algorithm tag of the exported summary.
        algorithm: String,
        /// Arrivals captured by the exported summary.
        processed: usize,
        /// `true` when the byte tail is a delta frame against the
        /// requested base; `false` for a fresh full snapshot frame.
        delta: bool,
        /// Export-cursor epoch (bumped on every full re-anchor).
        epoch: u64,
        /// CRC32 of the exported state (the next request's `since=` crc).
        crc: u32,
        /// The binary frame (`FDMSNAP2` full or `FDMDELT2` delta).
        bytes: Vec<u8>,
    },
    /// `authenticated`.
    Authenticated,
    /// `auth not required`.
    AuthNotRequired,
    /// `pong`.
    Pong,
    /// `bye`.
    Bye,
    /// Any `OK` payload this protocol version does not model — preserved
    /// verbatim so older clients survive newer servers.
    Other(String),
}

impl Payload {
    fn render(&self) -> String {
        match self {
            Payload::Opened { name } => format!("opened {name}"),
            Payload::Attached { name, processed } => {
                format!("attached {name} processed={processed}")
            }
            Payload::Inserted { seq } => format!("inserted processed={seq}"),
            Payload::InsertedBatch { seq, count } => {
                format!("inserted processed={seq} count={count}")
            }
            Payload::Query(q) => {
                let ids: Vec<String> = q.ids.iter().map(|id| id.to_string()).collect();
                format!("k={} diversity={} ids={}", q.k, q.diversity, ids.join(","))
            }
            Payload::SnapshotWritten {
                path,
                format,
                processed,
            } => format!(
                "snapshot {path} format={} processed={processed}",
                format_token(*format)
            ),
            Payload::Restored { name, processed } => {
                format!("restored {name} processed={processed}")
            }
            Payload::Stats(line) => line.clone(),
            Payload::Merge {
                algorithm,
                processed,
                bytes,
            } => format!(
                "merge algorithm={algorithm} processed={processed} bytes={}",
                bytes.len()
            ),
            Payload::MergeSince {
                algorithm,
                processed,
                delta,
                epoch,
                crc,
                bytes,
            } => format!(
                "merge algorithm={algorithm} processed={processed} kind={} \
                 epoch={epoch} crc={crc:08x} bytes={}",
                if *delta { "delta" } else { "full" },
                bytes.len()
            ),
            Payload::Authenticated => "authenticated".to_string(),
            Payload::AuthNotRequired => "auth not required".to_string(),
            Payload::Pong => "pong".to_string(),
            Payload::Bye => "bye".to_string(),
            Payload::Other(text) => text.clone(),
        }
    }

    /// Parses the text after `OK `. Unrecognized payloads land in
    /// [`Payload::Other`] verbatim (never an error: the success/failure
    /// split is carried by the `OK`/`ERR` prefix alone).
    fn parse(text: &str) -> Payload {
        match text {
            "authenticated" => return Payload::Authenticated,
            "auth not required" => return Payload::AuthNotRequired,
            "pong" => return Payload::Pong,
            "bye" => return Payload::Bye,
            _ => {}
        }
        Self::parse_structured(text).unwrap_or_else(|| Payload::Other(text.to_string()))
    }

    /// The multi-field payload shapes; `None` falls through to `Other`.
    fn parse_structured(text: &str) -> Option<Payload> {
        let fields: Vec<&str> = text.split_whitespace().collect();
        let field = |prefix: &str| {
            fields
                .iter()
                .find_map(|f| f.strip_prefix(prefix))
                .map(str::to_string)
        };
        let numeric =
            |prefix: &str| -> Option<usize> { field(prefix).and_then(|v| v.parse().ok()) };
        match *fields.first()? {
            "opened" if fields.len() == 2 => Some(Payload::Opened {
                name: fields[1].to_string(),
            }),
            "attached" if fields.len() == 3 => Some(Payload::Attached {
                name: fields[1].to_string(),
                processed: numeric("processed=")?,
            }),
            "inserted" if fields.len() == 2 => Some(Payload::Inserted {
                seq: numeric("processed=")?,
            }),
            "inserted" if fields.len() == 3 => Some(Payload::InsertedBatch {
                seq: numeric("processed=")?,
                count: numeric("count=")?,
            }),
            "snapshot" if fields.len() == 4 => Some(Payload::SnapshotWritten {
                path: fields[1].to_string(),
                format: SnapshotFormat::parse(&field("format=")?).ok()?,
                processed: numeric("processed=")?,
            }),
            "restored" if fields.len() == 3 => Some(Payload::Restored {
                name: fields[1].to_string(),
                processed: numeric("processed=")?,
            }),
            "merge" if fields.len() == 4 => {
                let len = numeric("bytes=")?;
                if len > MAX_MERGE_BYTES {
                    return None;
                }
                Some(Payload::Merge {
                    algorithm: field("algorithm=")?,
                    processed: numeric("processed=")?,
                    bytes: vec![0u8; len],
                })
            }
            "merge" if fields.len() == 7 => {
                let len = numeric("bytes=")?;
                if len > MAX_MERGE_BYTES {
                    return None;
                }
                let delta = match field("kind=")?.as_str() {
                    "delta" => true,
                    "full" => false,
                    _ => return None,
                };
                Some(Payload::MergeSince {
                    algorithm: field("algorithm=")?,
                    processed: numeric("processed=")?,
                    delta,
                    epoch: field("epoch=")?.parse().ok()?,
                    crc: u32::from_str_radix(&field("crc=")?, 16).ok()?,
                    bytes: vec![0u8; len],
                })
            }
            first if first.starts_with("stream=") => Some(Payload::Stats(text.to_string())),
            first if first.starts_with("k=") => {
                let k = numeric("k=")?;
                let diversity: f64 = field("diversity=")?.parse().ok()?;
                let ids_text = field("ids=")?;
                let ids: Vec<usize> = if ids_text.is_empty() {
                    Vec::new()
                } else {
                    ids_text
                        .split(',')
                        .map(|id| id.parse().ok())
                        .collect::<Option<_>>()?
                };
                (fields.len() == 3).then_some(Payload::Query(QueryReply { k, diversity, ids }))
            }
            _ => None,
        }
    }
}

/// The failure class of an [`ErrorReply`] — carried on the wire as a
/// message prefix so existing line-oriented consumers keep working.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// No prefix: parse errors, bad state, internal errors.
    Generic,
    /// `busy: ` — backpressure (rate limit or queue full); retry later.
    Busy,
    /// `empty stream: ` — QUERY before any INSERT.
    EmptyStream,
    /// `worker unavailable: ` — a coordinator could not reach a worker;
    /// the message names the failing `ADDR:PORT`.
    WorkerUnavailable,
}

impl ErrorKind {
    fn prefix(self) -> &'static str {
        match self {
            ErrorKind::Generic => "",
            ErrorKind::Busy => "busy: ",
            ErrorKind::EmptyStream => "empty stream: ",
            ErrorKind::WorkerUnavailable => "worker unavailable: ",
        }
    }
}

/// A typed `ERR` reply: a failure class plus a human-readable message.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorReply {
    /// Failure class (wire prefix).
    pub kind: ErrorKind,
    /// Message after the class prefix.
    pub message: String,
}

impl ErrorReply {
    /// An unclassified error.
    pub fn generic(message: impl Into<String>) -> ErrorReply {
        ErrorReply {
            kind: ErrorKind::Generic,
            message: message.into(),
        }
    }

    /// A backpressure rejection (`busy: ...`).
    pub fn busy(message: impl Into<String>) -> ErrorReply {
        ErrorReply {
            kind: ErrorKind::Busy,
            message: message.into(),
        }
    }

    /// A QUERY against a stream with zero arrivals (`empty stream: ...`).
    pub fn empty_stream(message: impl Into<String>) -> ErrorReply {
        ErrorReply {
            kind: ErrorKind::EmptyStream,
            message: message.into(),
        }
    }

    /// A coordinator-side worker failure (`worker unavailable: ...`).
    pub fn worker_unavailable(message: impl Into<String>) -> ErrorReply {
        ErrorReply {
            kind: ErrorKind::WorkerUnavailable,
            message: message.into(),
        }
    }

    /// Parses the text after `ERR `, classifying by prefix.
    fn parse(text: &str) -> ErrorReply {
        for kind in [
            ErrorKind::Busy,
            ErrorKind::EmptyStream,
            ErrorKind::WorkerUnavailable,
        ] {
            if let Some(rest) = text.strip_prefix(kind.prefix()) {
                return ErrorReply {
                    kind,
                    message: rest.to_string(),
                };
            }
        }
        ErrorReply::generic(text)
    }
}

impl std::fmt::Display for ErrorReply {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}{}", self.kind.prefix(), self.message)
    }
}

/// One reply line, typed. `Ok` carries a [`Payload`], `Err` an
/// [`ErrorReply`]; [`Response::render`] is the **only** sanctioned way to
/// produce an `OK `/`ERR ` line.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// `OK <payload>`.
    Ok(Payload),
    /// `ERR <kind-prefix><message>`.
    Err(ErrorReply),
}

impl Response {
    /// Renders the reply line (no trailing newline). For
    /// [`Payload::Merge`] this is the header line only; the binary tail is
    /// written separately by the session.
    pub fn render(&self) -> String {
        match self {
            Response::Ok(payload) => format!("OK {}", payload.render()),
            Response::Err(err) => format!("ERR {err}"),
        }
    }

    /// Parses one reply line. Inverse of [`Response::render`]:
    /// `parse(&r.render()) == Ok(r)` for every reply the server produces
    /// (for [`Payload::Merge`], up to the pre-sized zero-filled `bytes`).
    pub fn parse(line: &str) -> std::result::Result<Response, String> {
        let line = line.trim_end_matches(['\r', '\n']);
        if let Some(payload) = line.strip_prefix("OK ") {
            Ok(Response::Ok(Payload::parse(payload)))
        } else if let Some(err) = line.strip_prefix("ERR ") {
            Ok(Response::Err(ErrorReply::parse(err)))
        } else {
            Err(format!("malformed reply line `{line}`"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_open_variants() {
        let cmd = parse_line("OPEN jobs sfdm2 quotas=2,3 eps=0.1 dmin=0.5 dmax=9")
            .unwrap()
            .unwrap();
        match cmd {
            Request::Open { name, spec } => {
                assert_eq!(name, "jobs");
                assert_eq!(spec.algo, "sfdm2");
                assert_eq!(spec.quotas, vec![2, 3]);
                assert_eq!(spec.k, 5);
                assert_eq!(spec.shards, 1);
                assert_eq!(spec.metric, Metric::Euclidean);
            }
            other => panic!("{other:?}"),
        }
        let cmd = parse_line(
            "open u unconstrained k=6 eps=0.2 dmin=1 dmax=10 metric=minkowski:3 shards=4",
        )
        .unwrap()
        .unwrap();
        match cmd {
            Request::Open { spec, .. } => {
                assert_eq!(spec.k, 6);
                assert_eq!(spec.shards, 4);
                assert_eq!(spec.metric, Metric::Minkowski(3.0));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn open_rejects_bad_shapes() {
        for line in [
            "OPEN a sfdm2 eps=0.1 dmin=1 dmax=2",                // no quotas
            "OPEN a sfdm2 quotas=2,2 k=4 eps=0.1 dmin=1 dmax=2", // both
            "OPEN a unconstrained eps=0.1 dmin=1 dmax=2",        // no k
            "OPEN a unconstrained k=4 quotas=2 eps=0.1 dmin=1 dmax=2",
            "OPEN a bogus k=4 eps=0.1 dmin=1 dmax=2",
            "OPEN ../evil sfdm2 quotas=2,2 eps=0.1 dmin=1 dmax=2",
            "OPEN a sfdm2 quotas=2,2 dmin=1 dmax=2", // no eps
            "OPEN a sfdm2 quotas=2,2 eps=0.1 dmin=1 dmax=2 bogus=1",
        ] {
            assert!(parse_line(line).is_err(), "{line}");
        }
    }

    #[test]
    fn parses_insert_and_rejects_non_finite() {
        let cmd = parse_line("INSERT 7 1 0.5 -2.25").unwrap().unwrap();
        match cmd {
            Request::Insert(e) => {
                assert_eq!(e.id, 7);
                assert_eq!(e.group, 1);
                assert_eq!(&e.point[..], &[0.5, -2.25]);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse_line("INSERT 7").is_err());
        // Non-finite coordinates get their own typed error, at any
        // position, in every spelling `f64::from_str` accepts.
        for line in [
            "INSERT 7 1 NaN",
            "INSERT 7 1 nan",
            "INSERT 7 1 inf",
            "INSERT 7 1 -inf",
            "INSERT 7 1 infinity",
            "INSERT 7 1 0.5 -inf 1.25",
        ] {
            let err = parse_line(line).unwrap_err();
            assert!(err.contains("non-finite coordinate"), "{line}: {err}");
        }
        // ... while an unparseable token stays a plain invalid-coordinate
        // error.
        let err = parse_line("INSERT 7 1 zebra").unwrap_err();
        assert!(err.contains("invalid coordinate"), "{err}");
    }

    #[test]
    fn auth_parses() {
        assert_eq!(
            parse_line("AUTH s3cret").unwrap(),
            Some(Request::Auth {
                token: "s3cret".into()
            })
        );
        assert!(parse_line("AUTH").is_err());
        assert!(parse_line("AUTH a b").is_err());
    }

    #[test]
    fn snapshot_format_switch_parses() {
        assert_eq!(
            parse_line("SNAPSHOT /tmp/x.snap").unwrap().unwrap(),
            Request::Snapshot {
                path: "/tmp/x.snap".into(),
                format: None
            }
        );
        assert_eq!(
            parse_line("SNAPSHOT /tmp/x.snap format=json")
                .unwrap()
                .unwrap(),
            Request::Snapshot {
                path: "/tmp/x.snap".into(),
                format: Some(SnapshotFormat::Json)
            }
        );
        assert_eq!(
            parse_line("SNAPSHOT /tmp/x.snap format=bin")
                .unwrap()
                .unwrap(),
            Request::Snapshot {
                path: "/tmp/x.snap".into(),
                format: Some(SnapshotFormat::Binary)
            }
        );
        assert!(parse_line("SNAPSHOT /tmp/x.snap format=xml").is_err());
        assert!(parse_line("SNAPSHOT /tmp/x.snap json").is_err());
        assert!(parse_line("SNAPSHOT /tmp/x.snap format=bin extra").is_err());
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        assert_eq!(parse_line("").unwrap(), None);
        assert_eq!(parse_line("  # hi").unwrap(), None);
        assert_eq!(parse_line("PING").unwrap(), Some(Request::Ping));
        assert_eq!(parse_line("quit").unwrap(), Some(Request::Quit));
    }

    #[test]
    fn merge_parses_and_rejects_arguments() {
        assert_eq!(
            parse_line("MERGE").unwrap(),
            Some(Request::Merge { since: None })
        );
        assert_eq!(
            parse_line("merge").unwrap(),
            Some(Request::Merge { since: None })
        );
        assert_eq!(
            parse_line("MERGE since=3:00ab12cd").unwrap(),
            Some(Request::Merge {
                since: Some((3, 0x00ab_12cd))
            })
        );
        assert!(parse_line("MERGE now").is_err());
        assert!(parse_line("MERGE since=3").is_err());
        assert!(parse_line("MERGE since=x:00ab12cd").is_err());
        assert!(parse_line("MERGE since=3:zz").is_err());
        assert!(parse_line("MERGE since=1:2 extra").is_err());
    }

    #[test]
    fn insert_batch_parses_and_rejects_bad_shapes() {
        let cmd = parse_line("INSERTB 7 1 0.5 -2.25 | 8 0 1.5 3")
            .unwrap()
            .unwrap();
        match cmd {
            Request::InsertBatch(elements) => {
                assert_eq!(elements.len(), 2);
                assert_eq!(elements[0].id, 7);
                assert_eq!(&elements[0].point[..], &[0.5, -2.25]);
                assert_eq!(elements[1].id, 8);
                assert_eq!(elements[1].group, 0);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse_line("INSERTB").is_err());
        assert!(parse_line("INSERTB 7 1 0.5 |").is_err());
        assert!(parse_line("INSERTB | 7 1 0.5").is_err());
        assert!(parse_line("INSERTB 7 1").is_err());
        let err = parse_line("INSERTB 7 1 0.5 | 8 0 NaN").unwrap_err();
        assert!(err.contains("non-finite coordinate"), "{err}");
    }

    #[test]
    fn request_render_round_trips() {
        for line in [
            "OPEN jobs sfdm2 quotas=2,3 eps=0.1 dmin=0.5 dmax=9",
            "OPEN u unconstrained k=6 eps=0.2 dmin=1 dmax=10 metric=minkowski:3 shards=4",
            "OPEN w sliding quotas=1,1 eps=0.1 dmin=0.05 dmax=30 metric=manhattan window=40",
            "INSERT 7 1 0.5 -2.25",
            "INSERT 0 0 1.0000000000000002",
            "INSERTB 7 1 0.5 -2.25 | 8 0 1.0000000000000002",
            "INSERTB 9 1 4.25",
            "QUERY",
            "QUERY 4",
            "SNAPSHOT /tmp/x.snap",
            "SNAPSHOT /tmp/x.snap format=bin",
            "RESTORE /tmp/x.snap",
            "STATS",
            "MERGE",
            "MERGE since=7:00c0ffee",
            "AUTH s3cret",
            "PING",
            "QUIT",
        ] {
            let request = parse_line(line).unwrap().unwrap();
            assert_eq!(
                parse_line(&request.render()).unwrap().unwrap(),
                request,
                "{line}"
            );
        }
    }

    #[test]
    fn response_render_round_trips_byte_for_byte() {
        for line in [
            "OK opened jobs",
            "OK attached jobs processed=2",
            "OK inserted processed=41",
            "OK inserted processed=48 count=7",
            "OK k=4 diversity=11.65311262292763 ids=3,17,29,40",
            "OK snapshot /tmp/x.snap format=bin processed=40",
            "OK restored jobs processed=40",
            "OK stream=jobs algorithm=sfdm2 processed=40 stored=12",
            "OK merge algorithm=sfdm2 processed=40 bytes=2048",
            "OK merge algorithm=sfdm2 processed=40 kind=full epoch=2 crc=00c0ffee bytes=2048",
            "OK merge algorithm=sfdm2 processed=44 kind=delta epoch=2 crc=8badf00d bytes=96",
            "OK authenticated",
            "OK auth not required",
            "OK pong",
            "OK bye",
            "OK something from the future",
            "ERR unknown command `FROB`",
            "ERR busy: stream `jobs` is over its insert rate limit; retry later",
            "ERR empty stream: stream `jobs` has processed no elements; INSERT before QUERY",
            "ERR worker unavailable: 127.0.0.1:9001: connection refused",
        ] {
            let response = Response::parse(line).unwrap();
            assert_eq!(response.render(), line);
            assert_eq!(Response::parse(&response.render()).unwrap(), response);
        }
    }

    #[test]
    fn merge_header_presizes_bytes() {
        match Response::parse("OK merge algorithm=sliding processed=9 bytes=123").unwrap() {
            Response::Ok(Payload::Merge {
                algorithm,
                processed,
                bytes,
            }) => {
                assert_eq!(algorithm, "sliding");
                assert_eq!(processed, 9);
                assert_eq!(bytes.len(), 123);
                assert!(bytes.iter().all(|&b| b == 0));
            }
            other => panic!("{other:?}"),
        }
        // A corrupt astronomical length must not allocate; it degrades to
        // an opaque payload.
        match Response::parse("OK merge algorithm=sliding processed=9 bytes=999999999999").unwrap()
        {
            Response::Ok(Payload::Other(_)) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn merge_since_header_parses_and_degrades() {
        match Response::parse(
            "OK merge algorithm=sfdm2 processed=44 kind=delta epoch=2 crc=8badf00d bytes=96",
        )
        .unwrap()
        {
            Response::Ok(Payload::MergeSince {
                algorithm,
                processed,
                delta,
                epoch,
                crc,
                bytes,
            }) => {
                assert_eq!(algorithm, "sfdm2");
                assert_eq!(processed, 44);
                assert!(delta);
                assert_eq!(epoch, 2);
                assert_eq!(crc, 0x8bad_f00d);
                assert_eq!(bytes.len(), 96);
            }
            other => panic!("{other:?}"),
        }
        // Unknown kind / oversized length degrade to an opaque payload
        // instead of erroring (forward compatibility).
        for line in [
            "OK merge algorithm=sfdm2 processed=44 kind=mystery epoch=2 crc=8badf00d bytes=96",
            "OK merge algorithm=sfdm2 processed=44 kind=delta epoch=2 crc=8badf00d bytes=999999999999",
        ] {
            match Response::parse(line).unwrap() {
                Response::Ok(Payload::Other(_)) => {}
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn error_kinds_classify_by_prefix() {
        let err = ErrorReply::parse("busy: try later");
        assert_eq!(err.kind, ErrorKind::Busy);
        assert_eq!(err.message, "try later");
        assert_eq!(err.to_string(), "busy: try later");
        let err = ErrorReply::parse("plain failure");
        assert_eq!(err.kind, ErrorKind::Generic);
        assert_eq!(err.to_string(), "plain failure");
    }

    #[test]
    fn query_reply_parses_structured() {
        match Response::parse("OK k=4 diversity=11.5 ids=3,17,29,40").unwrap() {
            Response::Ok(Payload::Query(q)) => {
                assert_eq!(q.k, 4);
                assert_eq!(q.diversity, 11.5);
                assert_eq!(q.ids, vec![3, 17, 29, 40]);
            }
            other => panic!("{other:?}"),
        }
    }
}
