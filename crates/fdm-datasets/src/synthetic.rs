//! The paper's synthetic benchmark (Table I, Figs. 10–11).
//!
//! "We generate ten 2-dimensional Gaussian isotropic blobs with random
//! centers in `[−10, 10]²` and identity covariance matrices. We assign
//! points to groups uniformly at random. The Euclidean distance is used as
//! the distance metric." `n` varies in `10³..10⁷`, `m` in `2..20`.

use fdm_core::dataset::{Dataset, DatasetBuilder};
use fdm_core::error::Result;
use fdm_core::metric::Metric;
use rand::prelude::*;

use crate::rand_ext::standard_normal;

/// Parameters for [`synthetic_blobs`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyntheticConfig {
    /// Total number of points `n`.
    pub n: usize,
    /// Number of groups `m` (assigned uniformly at random).
    pub m: usize,
    /// Number of Gaussian blobs (the paper fixes 10).
    pub blobs: usize,
    /// RNG seed.
    pub seed: u64,
    /// Dimensionality of the points (the paper fixes 2; higher values are
    /// used by the kernel benchmarks, e.g. `d = 128`).
    pub dim: usize,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            n: 1000,
            m: 2,
            blobs: 10,
            seed: 42,
            dim: 2,
        }
    }
}

/// Generates the paper's synthetic dataset.
pub fn synthetic_blobs(config: SyntheticConfig) -> Result<Dataset> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let blobs = config.blobs.max(1);
    let dim = config.dim.max(1);
    let centers: Vec<Vec<f64>> = (0..blobs)
        .map(|_| {
            (0..dim)
                .map(|_| rng.random::<f64>() * 20.0 - 10.0)
                .collect()
        })
        .collect();
    // Emit straight into the dataset arena. The first m rows are pinned to
    // groups 0..m so equal-representation constraints are feasible even for
    // small n (the group draw is still consumed to keep seeds stable).
    let pinned = config.m.min(config.n);
    let mut builder = DatasetBuilder::with_capacity(dim, Metric::Euclidean, config.n)?;
    let mut row = vec![0.0f64; dim];
    for i in 0..config.n {
        let center = centers.choose(&mut rng).expect("blobs >= 1");
        for (slot, &c) in row.iter_mut().zip(center) {
            *slot = c + standard_normal(&mut rng);
        }
        let drawn = rng.random_range(0..config.m.max(1));
        builder.push_row(&row, if i < pinned { i } else { drawn })?;
    }
    builder.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_config() {
        let d = synthetic_blobs(SyntheticConfig {
            n: 500,
            m: 5,
            blobs: 10,
            seed: 1,
            dim: 2,
        })
        .unwrap();
        assert_eq!(d.len(), 500);
        assert_eq!(d.dim(), 2);
        assert_eq!(d.num_groups(), 5);
        assert_eq!(d.metric(), Metric::Euclidean);
        assert!(d.group_sizes().iter().all(|&s| s > 0));
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = SyntheticConfig {
            n: 100,
            m: 3,
            blobs: 10,
            seed: 9,
            dim: 2,
        };
        let a = synthetic_blobs(cfg).unwrap();
        let b = synthetic_blobs(cfg).unwrap();
        for i in 0..a.len() {
            assert_eq!(a.point(i), b.point(i));
            assert_eq!(a.group(i), b.group(i));
        }
        let c = synthetic_blobs(SyntheticConfig { seed: 10, ..cfg }).unwrap();
        let differs = (0..a.len()).any(|i| a.point(i) != c.point(i));
        assert!(differs, "different seeds must differ");
    }

    #[test]
    fn points_stay_near_the_box() {
        // Centers in [-10,10]², unit variance: virtually everything within
        // [-16, 16].
        let d = synthetic_blobs(SyntheticConfig {
            n: 2000,
            m: 2,
            blobs: 10,
            seed: 3,
            dim: 2,
        })
        .unwrap();
        for i in 0..d.len() {
            let p = d.point(i);
            assert!(p[0].abs() < 16.0 && p[1].abs() < 16.0, "outlier {p:?}");
        }
    }

    #[test]
    fn groups_roughly_uniform() {
        let m = 4;
        let d = synthetic_blobs(SyntheticConfig {
            n: 8000,
            m,
            blobs: 10,
            seed: 4,
            dim: 2,
        })
        .unwrap();
        for &s in d.group_sizes() {
            let frac = s as f64 / 8000.0;
            assert!((frac - 0.25).abs() < 0.03, "group fraction {frac}");
        }
    }

    #[test]
    fn blob_structure_exists() {
        // Mean distance to nearest blob center should be ~E|N(0,I)| ≈ 1.25,
        // far below the typical inter-center distance.
        let cfg = SyntheticConfig {
            n: 1000,
            m: 2,
            blobs: 10,
            seed: 5,
            dim: 2,
        };
        let d = synthetic_blobs(cfg).unwrap();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let centers: Vec<(f64, f64)> = (0..10)
            .map(|_| {
                (
                    rng.random::<f64>() * 20.0 - 10.0,
                    rng.random::<f64>() * 20.0 - 10.0,
                )
            })
            .collect();
        let mut total = 0.0;
        for i in 0..d.len() {
            let p = d.point(i);
            let nearest = centers
                .iter()
                .map(|&(cx, cy)| ((p[0] - cx).powi(2) + (p[1] - cy).powi(2)).sqrt())
                .fold(f64::INFINITY, f64::min);
            total += nearest;
        }
        let mean = total / d.len() as f64;
        assert!(mean < 2.0, "mean nearest-center distance {mean} too large");
    }

    #[test]
    fn high_dimensional_blobs() {
        let d = synthetic_blobs(SyntheticConfig {
            n: 300,
            m: 2,
            blobs: 10,
            seed: 6,
            dim: 128,
        })
        .unwrap();
        assert_eq!(d.len(), 300);
        assert_eq!(d.dim(), 128);
        // Unit-variance coordinates around centers in [-10, 10]^128.
        for i in 0..d.len() {
            assert!(d.point(i).iter().all(|x| x.abs() < 20.0));
        }
    }
}
