//! Stream-order utilities.
//!
//! The paper runs each experiment 10 times "with different permutations of
//! the same dataset" and reports averages; [`shuffled_indices`] provides the
//! seeded Fisher–Yates permutations, and [`stream_elements`] adapts a
//! dataset to an arbitrary-order element stream.

use fdm_core::dataset::Dataset;
use fdm_core::point::Element;
use rand::prelude::*;

/// A seeded random permutation of `0..n` (Fisher–Yates).
pub fn shuffled_indices(n: usize, seed: u64) -> Vec<usize> {
    let mut indices: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    indices.shuffle(&mut rng);
    indices
}

/// Iterates the dataset as an element stream in the given row order.
pub fn stream_elements<'a>(
    dataset: &'a Dataset,
    order: &'a [usize],
) -> impl Iterator<Item = Element> + 'a {
    order.iter().map(move |&i| dataset.element(i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdm_core::metric::Metric;

    #[test]
    fn permutation_is_a_bijection() {
        let p = shuffled_indices(100, 7);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn deterministic_per_seed_and_distinct_across_seeds() {
        assert_eq!(shuffled_indices(50, 1), shuffled_indices(50, 1));
        assert_ne!(shuffled_indices(50, 1), shuffled_indices(50, 2));
    }

    #[test]
    fn stream_follows_order() {
        let d = Dataset::from_rows(
            vec![vec![0.0], vec![1.0], vec![2.0]],
            vec![0, 0, 0],
            Metric::Euclidean,
        )
        .unwrap();
        let order = vec![2, 0, 1];
        let ids: Vec<usize> = stream_elements(&d, &order).map(|e| e.id).collect();
        assert_eq!(ids, order);
    }

    #[test]
    fn empty_and_single() {
        assert!(shuffled_indices(0, 3).is_empty());
        assert_eq!(shuffled_indices(1, 3), vec![0]);
    }
}
