//! Simulated **Lyrics** dataset (Musixmatch + LDA topic vectors).
//!
//! Paper (Table I): 122 448 song documents, each a 50-dimensional LDA topic
//! vector (trained with Gensim), angular distance; 15 groups from primary
//! genre. The simulation draws sparse topic-simplex vectors from
//! genre-specific Dirichlet priors (each genre concentrates on a few
//! signature topics), with a Zipf-like skew over genre sizes; see
//! DESIGN.md §4.4. Because all coordinates are non-negative, angular
//! distances are at most `π/2` — the property the paper leans on when it
//! restricts ε to `≤ 0.1` on this dataset.

use fdm_core::dataset::{Dataset, DatasetBuilder};
use fdm_core::error::Result;
use fdm_core::metric::Metric;
use rand::prelude::*;

use crate::rand_ext::{categorical, dirichlet};

/// Number of documents in the real Lyrics dataset.
pub const LYRICS_FULL_N: usize = 122_448;

/// Topic-model dimensionality.
pub const LYRICS_DIM: usize = 50;

/// Number of genre groups.
pub const LYRICS_GENRES: usize = 15;

/// Generates a simulated Lyrics dataset with `n` rows.
pub fn lyrics(n: usize, seed: u64) -> Result<Dataset> {
    let mut rng = StdRng::seed_from_u64(seed);

    // Zipf-ish genre popularity: weight ∝ 1/(rank+1).
    let genre_weights: Vec<f64> = (0..LYRICS_GENRES).map(|g| 1.0 / (g as f64 + 1.0)).collect();

    // Genre-specific Dirichlet priors: sparse background plus a boost on a
    // seeded set of signature topics per genre.
    let priors: Vec<Vec<f64>> = (0..LYRICS_GENRES)
        .map(|_| {
            let mut alpha = vec![0.06; LYRICS_DIM];
            for _ in 0..5 {
                let topic = rng.random_range(0..LYRICS_DIM);
                alpha[topic] += 1.2;
            }
            alpha
        })
        .collect();

    // Emit straight into the dataset arena; the first m rows are pinned to
    // groups 0..m so ER constraints stay feasible at small n.
    let pinned = LYRICS_GENRES.min(n);
    let mut builder = DatasetBuilder::with_capacity(LYRICS_DIM, Metric::Angular, n)?;
    for i in 0..n {
        let genre = categorical(&mut rng, &genre_weights);
        let row = dirichlet(&mut rng, &priors[genre]);
        builder.push_row(&row, if i < pinned { i } else { genre })?;
    }
    builder.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::FRAC_PI_2;

    #[test]
    fn table1_shape() {
        let d = lyrics(2000, 1).unwrap();
        assert_eq!(d.len(), 2000);
        assert_eq!(d.dim(), 50);
        assert_eq!(d.num_groups(), 15);
        assert_eq!(d.metric(), Metric::Angular);
    }

    #[test]
    fn rows_are_topic_simplex_vectors() {
        let d = lyrics(500, 2).unwrap();
        for i in 0..d.len() {
            let p = d.point(i);
            let sum: f64 = p.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "row {i} sums to {sum}");
            assert!(p.iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn angular_distances_capped_at_half_pi() {
        let d = lyrics(300, 3).unwrap();
        for i in 0..50 {
            for j in (i + 1)..50 {
                let dist = d.dist(i, j);
                assert!(dist <= FRAC_PI_2 + 1e-9, "distance {dist} exceeds pi/2");
                assert!(dist >= 0.0);
            }
        }
    }

    #[test]
    fn genre_sizes_are_skewed() {
        let d = lyrics(30_000, 4).unwrap();
        let sizes = d.group_sizes();
        assert!(sizes[0] > sizes[LYRICS_GENRES - 1] * 3, "sizes {sizes:?}");
        assert!(sizes.iter().all(|&s| s > 0));
    }

    #[test]
    fn same_genre_is_closer_on_average() {
        let d = lyrics(600, 5).unwrap();
        let mut within = (0.0, 0usize);
        let mut across = (0.0, 0usize);
        for i in 0..150 {
            for j in (i + 1)..150 {
                let dist = d.dist(i, j);
                if d.group(i) == d.group(j) {
                    within = (within.0 + dist, within.1 + 1);
                } else {
                    across = (across.0 + dist, across.1 + 1);
                }
            }
        }
        let within_mean = within.0 / within.1.max(1) as f64;
        let across_mean = across.0 / across.1.max(1) as f64;
        assert!(
            across_mean > within_mean,
            "across {across_mean} vs within {within_mean}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = lyrics(200, 6).unwrap();
        let b = lyrics(200, 6).unwrap();
        for i in 0..a.len() {
            assert_eq!(a.point(i), b.point(i));
            assert_eq!(a.group(i), b.group(i));
        }
    }
}
