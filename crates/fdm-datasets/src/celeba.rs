//! Simulated **CelebA** dataset (face-attribute scores).
//!
//! Paper (Table I): 202 599 images, 41 pre-trained class-label features,
//! Manhattan distance; groups from *sex* (2), *age* (2), and *sex+age* (4).
//! The simulation draws 41 correlated attribute scores in `[0, 1]` from a
//! latent-factor model in which sex and age shift a seeded random subset of
//! attributes (as the real classifier scores co-vary with them); see
//! DESIGN.md §4.2.

use fdm_core::dataset::{Dataset, DatasetBuilder};
use fdm_core::error::Result;
use fdm_core::metric::Metric;
use rand::prelude::*;

use crate::rand_ext::{normal, standard_normal};

/// Number of images in the real CelebA dataset.
pub const CELEBA_FULL_N: usize = 202_599;

/// Number of attribute features (the paper uses 41 class labels).
pub const CELEBA_DIM: usize = 41;

/// Which sensitive attribute(s) define the groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CelebaGrouping {
    /// Two groups: female / male (≈58% / 42% as in the real label marginals).
    Sex,
    /// Two groups: young / not-young (≈77% / 23%).
    Age,
    /// Four sex×age groups.
    SexAge,
}

impl CelebaGrouping {
    /// Number of groups `m` for this grouping (2 / 2 / 4, as in Table I).
    pub fn num_groups(&self) -> usize {
        match self {
            CelebaGrouping::Sex | CelebaGrouping::Age => 2,
            CelebaGrouping::SexAge => 4,
        }
    }
}

/// Generates a simulated CelebA dataset with `n` rows.
pub fn celeba(grouping: CelebaGrouping, n: usize, seed: u64) -> Result<Dataset> {
    let mut rng = StdRng::seed_from_u64(seed);

    // Fixed (seeded) attribute model: base rate plus sex/age loadings plus
    // two shared latent style factors.
    let base: Vec<f64> = (0..CELEBA_DIM)
        .map(|_| rng.random::<f64>() * 0.6 + 0.2)
        .collect();
    let sex_load: Vec<f64> = (0..CELEBA_DIM)
        .map(|_| normal(&mut rng, 0.0, 0.25))
        .collect();
    let age_load: Vec<f64> = (0..CELEBA_DIM)
        .map(|_| normal(&mut rng, 0.0, 0.2))
        .collect();
    let style1: Vec<f64> = (0..CELEBA_DIM)
        .map(|_| normal(&mut rng, 0.0, 0.15))
        .collect();
    let style2: Vec<f64> = (0..CELEBA_DIM)
        .map(|_| normal(&mut rng, 0.0, 0.15))
        .collect();

    // Emit straight into the dataset arena; the first m rows are pinned to
    // groups 0..m so ER constraints stay feasible at small n.
    let pinned = grouping.num_groups().min(n);
    let mut builder = DatasetBuilder::with_capacity(CELEBA_DIM, Metric::Manhattan, n)?;
    let mut row = [0.0f64; CELEBA_DIM];
    for i in 0..n {
        let female = rng.random::<f64>() < 0.58;
        let young = rng.random::<f64>() < 0.77;
        let group = if i < pinned {
            i
        } else {
            match grouping {
                CelebaGrouping::Sex => usize::from(!female),
                CelebaGrouping::Age => usize::from(!young),
                CelebaGrouping::SexAge => usize::from(!female) * 2 + usize::from(!young),
            }
        };

        let s = if female { 1.0 } else { -1.0 };
        let a = if young { 1.0 } else { -1.0 };
        let f1 = standard_normal(&mut rng);
        let f2 = standard_normal(&mut rng);
        for (j, slot) in row.iter_mut().enumerate() {
            let score = base[j]
                + s * sex_load[j]
                + a * age_load[j]
                + f1 * style1[j]
                + f2 * style2[j]
                + normal(&mut rng, 0.0, 0.08);
            *slot = score.clamp(0.0, 1.0);
        }
        builder.push_row(&row, group)?;
    }
    builder.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shape() {
        let d = celeba(CelebaGrouping::Sex, 1500, 1).unwrap();
        assert_eq!(d.len(), 1500);
        assert_eq!(d.dim(), 41);
        assert_eq!(d.num_groups(), 2);
        assert_eq!(d.metric(), Metric::Manhattan);
    }

    #[test]
    fn scores_in_unit_interval() {
        let d = celeba(CelebaGrouping::SexAge, 800, 2).unwrap();
        for i in 0..d.len() {
            for &v in d.point(i) {
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn group_marginals() {
        let d = celeba(CelebaGrouping::Sex, 20_000, 3).unwrap();
        let female = d.group_sizes()[0] as f64 / d.len() as f64;
        assert!((female - 0.58).abs() < 0.02, "female fraction {female}");
        let d = celeba(CelebaGrouping::Age, 20_000, 3).unwrap();
        let young = d.group_sizes()[0] as f64 / d.len() as f64;
        assert!((young - 0.77).abs() < 0.02, "young fraction {young}");
        let d = celeba(CelebaGrouping::SexAge, 20_000, 3).unwrap();
        assert_eq!(d.num_groups(), 4);
        assert!(d.group_sizes().iter().all(|&s| s > 100));
    }

    #[test]
    fn sex_separates_groups_geometrically() {
        // Mean Manhattan distance across sexes should exceed within-sex.
        let d = celeba(CelebaGrouping::Sex, 600, 4).unwrap();
        let mut within = (0.0, 0usize);
        let mut across = (0.0, 0usize);
        for i in 0..200 {
            for j in (i + 1)..200 {
                let dist = d.dist(i, j);
                if d.group(i) == d.group(j) {
                    within = (within.0 + dist, within.1 + 1);
                } else {
                    across = (across.0 + dist, across.1 + 1);
                }
            }
        }
        let within_mean = within.0 / within.1 as f64;
        let across_mean = across.0 / across.1 as f64;
        assert!(
            across_mean > within_mean * 1.02,
            "across {across_mean} vs within {within_mean}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = celeba(CelebaGrouping::Age, 200, 5).unwrap();
        let b = celeba(CelebaGrouping::Age, 200, 5).unwrap();
        for i in 0..a.len() {
            assert_eq!(a.point(i), b.point(i));
        }
    }
}
