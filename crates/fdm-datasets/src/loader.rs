//! CSV loading for users who have the real datasets.
//!
//! The paper's pipelines select numeric feature columns, optionally
//! normalize them, and derive the group label from one or two categorical
//! columns. [`load_csv`] reproduces that: give it the feature column
//! indices, the group column index, and a normalization mode, and it builds
//! a [`Dataset`] with dense group labels in first-appearance order.

use std::collections::HashMap;
use std::fs::File;
use std::io::{BufRead, BufReader};
use std::path::Path;

use fdm_core::dataset::{Dataset, DatasetBuilder};
use fdm_core::error::{FdmError, Result};
use fdm_core::metric::Metric;

use crate::stats::{minmax_columns, zscore_columns};

/// How feature columns are normalized after loading.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Normalization {
    /// Leave raw values.
    None,
    /// Zero mean, unit standard deviation per column (the paper's Adult /
    /// Census preprocessing).
    ZScore,
    /// Min–max to `[0, 1]` per column.
    MinMax,
}

/// CSV loading options.
#[derive(Debug, Clone)]
pub struct CsvOptions {
    /// Zero-based indices of numeric feature columns.
    pub feature_columns: Vec<usize>,
    /// Zero-based index of the group (sensitive-attribute) column; its
    /// distinct values become groups in first-appearance order.
    pub group_column: usize,
    /// Whether the first line is a header to skip.
    pub has_header: bool,
    /// Field delimiter (`,` for CSV, `\t` for TSV, …).
    pub delimiter: char,
    /// Per-column normalization applied after the full file is read.
    pub normalization: Normalization,
    /// Metric for the resulting dataset.
    pub metric: Metric,
}

/// Loads a delimited text file into a [`Dataset`].
///
/// Rows with missing or non-numeric feature fields are skipped (the UCI
/// files mark missing data with `?`), matching the common preprocessing of
/// the paper's datasets.
pub fn load_csv<P: AsRef<Path>>(path: P, options: &CsvOptions) -> Result<Dataset> {
    let file = File::open(path.as_ref()).map_err(|_| FdmError::NotEnoughElements {
        required: 1,
        available: 0,
    })?;
    let reader = BufReader::new(file);
    parse_lines(reader.lines().map_while(|l| l.ok()), options)
}

/// Parses an in-memory string with the same semantics as [`load_csv`]
/// (used by tests and by callers that already hold the data).
pub fn load_csv_str(content: &str, options: &CsvOptions) -> Result<Dataset> {
    parse_lines(content.lines().map(str::to_owned), options)
}

fn parse_lines<I: Iterator<Item = String>>(lines: I, options: &CsvOptions) -> Result<Dataset> {
    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); options.feature_columns.len()];
    let mut groups: Vec<usize> = Vec::new();
    let mut group_ids: HashMap<String, usize> = HashMap::new();

    for (line_no, line) in lines.enumerate() {
        if line_no == 0 && options.has_header {
            continue;
        }
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(options.delimiter).map(str::trim).collect();
        let max_needed = options
            .feature_columns
            .iter()
            .copied()
            .chain([options.group_column])
            .max()
            .unwrap_or(0);
        if fields.len() <= max_needed {
            continue; // short row
        }
        let mut row = Vec::with_capacity(options.feature_columns.len());
        let mut ok = true;
        for &c in &options.feature_columns {
            match fields[c].parse::<f64>() {
                Ok(v) if v.is_finite() => row.push(v),
                _ => {
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            continue;
        }
        let key = fields[options.group_column].to_owned();
        let next_id = group_ids.len();
        let gid = *group_ids.entry(key).or_insert(next_id);
        groups.push(gid);
        for (col, v) in columns.iter_mut().zip(row) {
            col.push(v);
        }
    }

    match options.normalization {
        Normalization::None => {}
        Normalization::ZScore => zscore_columns(&mut columns),
        Normalization::MinMax => minmax_columns(&mut columns),
    }

    // Emit straight into the dataset arena (no per-row Vec materialization).
    let n = groups.len();
    if n == 0 {
        return Err(FdmError::NotEnoughElements {
            required: 1,
            available: 0,
        });
    }
    let dim = columns.len();
    let mut builder = DatasetBuilder::with_capacity(dim, options.metric, n)?;
    let mut row = vec![0.0f64; dim];
    for (i, &group) in groups.iter().enumerate() {
        for (slot, col) in row.iter_mut().zip(&columns) {
            *slot = col[i];
        }
        builder.push_row(&row, group)?;
    }
    builder.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn options() -> CsvOptions {
        CsvOptions {
            feature_columns: vec![0, 2],
            group_column: 1,
            has_header: true,
            delimiter: ',',
            normalization: Normalization::None,
            metric: Metric::Euclidean,
        }
    }

    #[test]
    fn parses_basic_csv() {
        let csv = "age,sex,hours\n30,Male,40\n25,Female,35\n41,Male,50\n";
        let d = load_csv_str(csv, &options()).unwrap();
        assert_eq!(d.len(), 3);
        assert_eq!(d.dim(), 2);
        assert_eq!(d.num_groups(), 2);
        assert_eq!(d.point(0), &[30.0, 40.0]);
        assert_eq!(d.group(0), 0); // Male first-appearance = 0
        assert_eq!(d.group(1), 1);
    }

    #[test]
    fn skips_rows_with_missing_values() {
        let csv = "age,sex,hours\n30,Male,40\n?,Female,35\n41,Male,oops\n22,Female,20\n";
        let d = load_csv_str(csv, &options()).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.point(1), &[22.0, 20.0]);
    }

    #[test]
    fn zscore_normalization_applies() {
        let csv = "a,g,b\n1,x,10\n2,x,20\n3,y,30\n";
        let mut opts = options();
        opts.normalization = Normalization::ZScore;
        let d = load_csv_str(csv, &opts).unwrap();
        let mean: f64 = (0..3).map(|i| d.point(i)[0]).sum::<f64>() / 3.0;
        assert!(mean.abs() < 1e-12);
    }

    #[test]
    fn minmax_normalization_applies() {
        let csv = "a,g,b\n1,x,10\n2,x,20\n3,y,30\n";
        let mut opts = options();
        opts.normalization = Normalization::MinMax;
        let d = load_csv_str(csv, &opts).unwrap();
        assert_eq!(d.point(0)[0], 0.0);
        assert_eq!(d.point(2)[0], 1.0);
    }

    #[test]
    fn tsv_delimiter() {
        let tsv = "a\tg\tb\n1\tx\t10\n2\ty\t20\n";
        let mut opts = options();
        opts.delimiter = '\t';
        let d = load_csv_str(tsv, &opts).unwrap();
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn short_and_empty_lines_skipped() {
        let csv = "a,g,b\n1,x,10\n\n2,y\n3,y,30\n";
        let d = load_csv_str(csv, &options()).unwrap();
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn missing_file_is_an_error() {
        assert!(load_csv("/nonexistent/path.csv", &options()).is_err());
    }

    #[test]
    fn empty_content_is_an_error() {
        assert!(load_csv_str("a,g,b\n", &options()).is_err());
    }
}
