//! Simulated **US Census 1990** dataset.
//!
//! Paper (Table I): 2 426 116 records, 25 normalized numeric attributes,
//! Manhattan distance; groups from *sex* (2), *age* (7), and *sex+age*
//! (14). The simulation draws each record from one of a fixed set of
//! household "archetypes" (a Gaussian mixture in 25 dimensions) with
//! sex/age-dependent shifts, then z-scores the columns; see DESIGN.md §4.3.
//! The full 2.4M-row instance is available but the experiment defaults use
//! fewer rows — the streaming algorithms' per-element cost and space are
//! `n`-independent, so the shape of every figure is preserved.

use fdm_core::dataset::{Dataset, DatasetBuilder};
use fdm_core::error::Result;
use fdm_core::metric::Metric;
use rand::prelude::*;

use crate::rand_ext::{categorical, normal};
use crate::stats::zscore_columns;

/// Number of records in the real Census 1990 extract.
pub const CENSUS_FULL_N: usize = 2_426_116;

/// Number of numeric attributes used by the paper.
pub const CENSUS_DIM: usize = 25;

/// Number of age brackets in the 7-group setting.
pub const CENSUS_AGE_GROUPS: usize = 7;

/// Which sensitive attribute(s) define the groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CensusGrouping {
    /// Two sex groups (≈52% / 48%).
    Sex,
    /// Seven age brackets.
    Age,
    /// Fourteen sex×age groups.
    SexAge,
}

impl CensusGrouping {
    /// Number of groups `m` for this grouping (2 / 7 / 14, as in Table I).
    pub fn num_groups(&self) -> usize {
        match self {
            CensusGrouping::Sex => 2,
            CensusGrouping::Age => CENSUS_AGE_GROUPS,
            CensusGrouping::SexAge => 2 * CENSUS_AGE_GROUPS,
        }
    }
}

/// Generates a simulated Census dataset with `n` rows.
pub fn census(grouping: CensusGrouping, n: usize, seed: u64) -> Result<Dataset> {
    let mut rng = StdRng::seed_from_u64(seed);

    // Household archetypes: 12 mixture components over 25 attributes.
    const ARCHETYPES: usize = 12;
    let means: Vec<Vec<f64>> = (0..ARCHETYPES)
        .map(|_| {
            (0..CENSUS_DIM)
                .map(|_| normal(&mut rng, 0.0, 2.0))
                .collect()
        })
        .collect();
    let archetype_weights: Vec<f64> = (0..ARCHETYPES).map(|_| rng.random::<f64>() + 0.2).collect();
    let sex_shift: Vec<f64> = (0..CENSUS_DIM)
        .map(|_| normal(&mut rng, 0.0, 0.4))
        .collect();
    let age_shift: Vec<f64> = (0..CENSUS_DIM)
        .map(|_| normal(&mut rng, 0.0, 0.25))
        .collect();
    // Age-bracket population shares, roughly the 1990 pyramid.
    let age_weights = [0.10, 0.14, 0.17, 0.16, 0.13, 0.16, 0.14];

    let mut columns: Vec<Vec<f64>> = (0..CENSUS_DIM).map(|_| Vec::with_capacity(n)).collect();
    let mut groups = Vec::with_capacity(n);
    for _ in 0..n {
        let male = rng.random::<f64>() < 0.48;
        let age = categorical(&mut rng, &age_weights);
        let group = match grouping {
            CensusGrouping::Sex => usize::from(male),
            CensusGrouping::Age => age,
            CensusGrouping::SexAge => usize::from(male) * CENSUS_AGE_GROUPS + age,
        };
        groups.push(group);

        let arch = categorical(&mut rng, &archetype_weights);
        let s = if male { 1.0 } else { -1.0 };
        let a = age as f64 - 3.0; // centered bracket index
        for (j, col) in columns.iter_mut().enumerate() {
            let v =
                means[arch][j] + s * sex_shift[j] + a * age_shift[j] + normal(&mut rng, 0.0, 0.6);
            col.push(v);
        }
    }

    zscore_columns(&mut columns);
    for g in 0..grouping.num_groups().min(n) {
        groups[g] = g;
    }
    // Emit straight into the dataset arena (no per-row Vec materialization).
    let mut builder = DatasetBuilder::with_capacity(CENSUS_DIM, Metric::Manhattan, n)?;
    let mut row = [0.0f64; CENSUS_DIM];
    for (i, &group) in groups.iter().enumerate() {
        for (slot, col) in row.iter_mut().zip(&columns) {
            *slot = col[i];
        }
        builder.push_row(&row, group)?;
    }
    builder.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shape() {
        let d = census(CensusGrouping::Age, 3000, 1).unwrap();
        assert_eq!(d.len(), 3000);
        assert_eq!(d.dim(), 25);
        assert_eq!(d.num_groups(), 7);
        assert_eq!(d.metric(), Metric::Manhattan);
    }

    #[test]
    fn group_settings_match_table1() {
        assert_eq!(CensusGrouping::Sex.num_groups(), 2);
        assert_eq!(CensusGrouping::Age.num_groups(), 7);
        assert_eq!(CensusGrouping::SexAge.num_groups(), 14);
        let d = census(CensusGrouping::SexAge, 10_000, 2).unwrap();
        assert_eq!(d.num_groups(), 14);
        assert!(d.group_sizes().iter().all(|&s| s > 0));
    }

    #[test]
    fn columns_are_normalized() {
        let d = census(CensusGrouping::Sex, 5000, 3).unwrap();
        for j in 0..d.dim() {
            let vals: Vec<f64> = (0..d.len()).map(|i| d.point(i)[j]).collect();
            let mean = vals.iter().sum::<f64>() / vals.len() as f64;
            assert!(mean.abs() < 1e-9, "column {j} mean {mean}");
        }
    }

    #[test]
    fn age_pyramid_is_skewed_but_covering() {
        let d = census(CensusGrouping::Age, 30_000, 4).unwrap();
        for (g, &s) in d.group_sizes().iter().enumerate() {
            let frac = s as f64 / d.len() as f64;
            assert!(frac > 0.05 && frac < 0.25, "bracket {g} fraction {frac}");
        }
    }

    #[test]
    fn mixture_structure_beats_pure_noise() {
        // With 12 archetypes of radius ~0.6 noise and means of scale 2.0,
        // the distance distribution should be bimodal-ish: nearest-neighbor
        // distances well below the mean pairwise distance.
        let d = census(CensusGrouping::Sex, 400, 5).unwrap();
        let mut all = Vec::new();
        let mut nn = vec![f64::INFINITY; 200];
        for i in 0..200 {
            for j in 0..200 {
                if i == j {
                    continue;
                }
                let dist = d.dist(i, j);
                if j > i {
                    all.push(dist);
                }
                nn[i] = nn[i].min(dist);
            }
        }
        let mean_all = all.iter().sum::<f64>() / all.len() as f64;
        let mean_nn = nn.iter().sum::<f64>() / nn.len() as f64;
        assert!(mean_nn < 0.8 * mean_all, "nn {mean_nn} vs all {mean_all}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = census(CensusGrouping::Sex, 150, 6).unwrap();
        let b = census(CensusGrouping::Sex, 150, 6).unwrap();
        for i in 0..a.len() {
            assert_eq!(a.point(i), b.point(i));
            assert_eq!(a.group(i), b.group(i));
        }
    }
}
