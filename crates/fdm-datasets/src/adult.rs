//! Simulated **Adult** dataset (UCI Census-Income 1994).
//!
//! Paper (Table I): 48 842 records, 6 z-scored numeric attributes,
//! Euclidean distance; groups from *sex* (2, ≈67% male), *race* (5, ≈87%
//! White), and *sex+race* (10). We do not ship the UCI download; this
//! seeded generator reproduces the cardinality, dimensionality, metric,
//! group skew, and the group-conditioned cluster structure that the
//! algorithms actually exercise (see DESIGN.md §4.1).
//!
//! Features mirror the six numeric columns the paper selects: age, final
//! weight, education-num, capital-gain, capital-loss, hours-per-week —
//! including the heavy zero-inflation of the capital columns, which is what
//! gives the real Adult its large metric spread ∆.

use fdm_core::dataset::{Dataset, DatasetBuilder};
use fdm_core::error::Result;
use fdm_core::metric::Metric;
use rand::prelude::*;

use crate::rand_ext::{categorical, log_normal, normal};
use crate::stats::zscore_columns;

/// Number of records in the real Adult dataset.
pub const ADULT_FULL_N: usize = 48_842;

/// Which sensitive attribute(s) define the groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdultGrouping {
    /// Two groups: male / female (≈67% / 33%).
    Sex,
    /// Five race groups (≈87% / 5% / 4% / 3% / 1%).
    Race,
    /// Ten sex×race groups.
    SexRace,
}

impl AdultGrouping {
    /// Number of groups `m` for this grouping (2 / 5 / 10, as in Table I).
    pub fn num_groups(&self) -> usize {
        match self {
            AdultGrouping::Sex => 2,
            AdultGrouping::Race => 5,
            AdultGrouping::SexRace => 10,
        }
    }
}

/// Generates a simulated Adult dataset with `n` rows.
///
/// Use [`ADULT_FULL_N`] for the paper-sized instance; smaller `n` keeps the
/// same distributions (the experiments' per-element costs are
/// n-independent for the streaming algorithms).
pub fn adult(grouping: AdultGrouping, n: usize, seed: u64) -> Result<Dataset> {
    let mut rng = StdRng::seed_from_u64(seed);
    let race_weights = [0.87, 0.05, 0.04, 0.03, 0.01];
    let mut columns: Vec<Vec<f64>> = (0..6).map(|_| Vec::with_capacity(n)).collect();
    let mut groups = Vec::with_capacity(n);

    for _ in 0..n {
        let male = rng.random::<f64>() < 0.67;
        let race = categorical(&mut rng, &race_weights);
        let group = match grouping {
            AdultGrouping::Sex => usize::from(!male),
            AdultGrouping::Race => race,
            AdultGrouping::SexRace => usize::from(!male) * 5 + race,
        };
        groups.push(group);

        // Group-conditioned feature distributions: modest mean shifts per
        // sex/race so groups are geometrically distinguishable (as the real
        // socio-economic attributes are), plus heavy-tailed capital columns.
        let race_shift = race as f64 * 0.8;
        let age = normal(
            &mut rng,
            38.5 + if male { 1.5 } else { -1.5 } - race_shift * 0.4,
            13.0,
        )
        .clamp(17.0, 90.0);
        let fnlwgt = log_normal(&mut rng, 12.0 - race_shift * 0.05, 0.5);
        let education = normal(
            &mut rng,
            10.1 + if male { 0.1 } else { 0.0 } - race_shift * 0.3,
            2.5,
        )
        .clamp(1.0, 16.0);
        let capital_gain = if rng.random::<f64>() < 0.916 {
            0.0
        } else {
            log_normal(&mut rng, 8.0 + if male { 0.3 } else { 0.0 }, 1.0).min(99_999.0)
        };
        let capital_loss = if rng.random::<f64>() < 0.953 {
            0.0
        } else {
            log_normal(&mut rng, 7.4, 0.4).min(4_500.0)
        };
        let hours = normal(&mut rng, if male { 42.4 } else { 36.4 }, 12.0).clamp(1.0, 99.0);

        for (col, v) in
            columns
                .iter_mut()
                .zip([age, fnlwgt, education, capital_gain, capital_loss, hours])
        {
            col.push(v);
        }
    }

    zscore_columns(&mut columns);
    // Keep every group populated so ER constraints are feasible at small n.
    for g in 0..grouping.num_groups().min(n) {
        groups[g] = g;
    }
    // Emit straight into the dataset arena (no per-row Vec materialization).
    let mut builder = DatasetBuilder::with_capacity(6, Metric::Euclidean, n)?;
    let mut row = [0.0f64; 6];
    for (i, &group) in groups.iter().enumerate() {
        for (slot, col) in row.iter_mut().zip(&columns) {
            *slot = col[i];
        }
        builder.push_row(&row, group)?;
    }
    builder.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shape() {
        let d = adult(AdultGrouping::Sex, 2000, 1).unwrap();
        assert_eq!(d.len(), 2000);
        assert_eq!(d.dim(), 6);
        assert_eq!(d.num_groups(), 2);
        assert_eq!(d.metric(), Metric::Euclidean);
    }

    #[test]
    fn group_counts_match_table1() {
        assert_eq!(AdultGrouping::Sex.num_groups(), 2);
        assert_eq!(AdultGrouping::Race.num_groups(), 5);
        assert_eq!(AdultGrouping::SexRace.num_groups(), 10);
        let d = adult(AdultGrouping::SexRace, 5000, 2).unwrap();
        assert_eq!(d.num_groups(), 10);
        assert!(d.group_sizes().iter().all(|&s| s > 0));
    }

    #[test]
    fn sex_skew_matches_paper() {
        // Paper: 67% of records are male (group 0 here).
        let d = adult(AdultGrouping::Sex, 20_000, 3).unwrap();
        let male_frac = d.group_sizes()[0] as f64 / d.len() as f64;
        assert!((male_frac - 0.67).abs() < 0.02, "male fraction {male_frac}");
    }

    #[test]
    fn race_skew_matches_paper() {
        // Paper: 87% of records are White (group 0 here).
        let d = adult(AdultGrouping::Race, 20_000, 4).unwrap();
        let white_frac = d.group_sizes()[0] as f64 / d.len() as f64;
        assert!(
            (white_frac - 0.87).abs() < 0.02,
            "white fraction {white_frac}"
        );
    }

    #[test]
    fn features_are_zscored() {
        let d = adult(AdultGrouping::Sex, 10_000, 5).unwrap();
        for j in 0..d.dim() {
            let vals: Vec<f64> = (0..d.len()).map(|i| d.point(i)[j]).collect();
            let mean = vals.iter().sum::<f64>() / vals.len() as f64;
            let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / vals.len() as f64;
            assert!(mean.abs() < 1e-9, "column {j} mean {mean}");
            assert!((var - 1.0).abs() < 1e-6, "column {j} var {var}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = adult(AdultGrouping::Race, 300, 6).unwrap();
        let b = adult(AdultGrouping::Race, 300, 6).unwrap();
        for i in 0..a.len() {
            assert_eq!(a.point(i), b.point(i));
            assert_eq!(a.group(i), b.group(i));
        }
    }

    #[test]
    fn heavy_tail_capital_columns_create_spread() {
        // The z-scored capital-gain column (index 3) should have most mass
        // at one negative value (the zeros) and rare large positives.
        let d = adult(AdultGrouping::Sex, 20_000, 7).unwrap();
        let vals: Vec<f64> = (0..d.len()).map(|i| d.point(i)[3]).collect();
        let big = vals.iter().filter(|&&v| v > 2.0).count() as f64 / vals.len() as f64;
        assert!(big > 0.005 && big < 0.15, "tail mass {big}");
    }
}
