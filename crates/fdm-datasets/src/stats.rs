//! Column statistics used by the dataset generators and the CSV loader.

/// Z-scores every column in place (zero mean, unit standard deviation).
///
/// Constant columns are centered but left unscaled (their standard
/// deviation is zero).
pub fn zscore_columns(columns: &mut [Vec<f64>]) {
    for col in columns.iter_mut() {
        if col.is_empty() {
            continue;
        }
        let n = col.len() as f64;
        let mean = col.iter().sum::<f64>() / n;
        let var = col.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        let std = var.sqrt();
        if std > 0.0 {
            for v in col.iter_mut() {
                *v = (*v - mean) / std;
            }
        } else {
            for v in col.iter_mut() {
                *v -= mean;
            }
        }
    }
}

/// Min–max scales every column in place to `[0, 1]`.
///
/// Constant columns map to 0.
pub fn minmax_columns(columns: &mut [Vec<f64>]) {
    for col in columns.iter_mut() {
        if col.is_empty() {
            continue;
        }
        let lo = col.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = col.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let range = hi - lo;
        for v in col.iter_mut() {
            *v = if range > 0.0 { (*v - lo) / range } else { 0.0 };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zscore_normalizes() {
        let mut cols = vec![vec![1.0, 2.0, 3.0, 4.0], vec![10.0, 10.0, 10.0, 10.0]];
        zscore_columns(&mut cols);
        let mean0: f64 = cols[0].iter().sum::<f64>() / 4.0;
        assert!(mean0.abs() < 1e-12);
        let var0: f64 = cols[0].iter().map(|v| v * v).sum::<f64>() / 4.0;
        assert!((var0 - 1.0).abs() < 1e-12);
        // Constant column centered to zero.
        assert!(cols[1].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn minmax_scales_to_unit_interval() {
        let mut cols = vec![vec![-5.0, 0.0, 5.0], vec![7.0, 7.0, 7.0]];
        minmax_columns(&mut cols);
        assert_eq!(cols[0], vec![0.0, 0.5, 1.0]);
        assert_eq!(cols[1], vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn empty_columns_are_noops() {
        let mut cols: Vec<Vec<f64>> = vec![vec![]];
        zscore_columns(&mut cols);
        minmax_columns(&mut cols);
        assert!(cols[0].is_empty());
    }
}
