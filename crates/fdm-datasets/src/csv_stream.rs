//! One-pass CSV element streams.
//!
//! [`loader::load_csv`](crate::loader::load_csv) materializes a whole
//! [`Dataset`](fdm_core::dataset::Dataset) — fine for the offline baselines,
//! but it defeats the point of a streaming algorithm whose selling point is
//! `O(poly(k, m, log ∆))` memory. [`CsvElementStream`] instead parses rows
//! lazily from any `BufRead` and yields [`Element`]s one at a time, so
//! SFDM1/SFDM2 can run over files larger than memory.
//!
//! Normalization note: z-scoring needs global column statistics, which a
//! single pass cannot know upfront. Provide them via
//! [`CsvStreamOptions::standardize`] (means/std-devs from metadata or a
//! prior cheap pass), or stream raw values.

use std::collections::HashMap;
use std::fs::File;
use std::io::{BufRead, BufReader};
use std::path::Path;

use fdm_core::error::{FdmError, Result};
use fdm_core::point::Element;

/// Per-column standardization parameters.
#[derive(Debug, Clone)]
pub struct Standardize {
    /// Column means, one per feature column.
    pub means: Vec<f64>,
    /// Column standard deviations (zeros are treated as 1).
    pub std_devs: Vec<f64>,
}

/// Options for [`CsvElementStream`].
#[derive(Debug, Clone)]
pub struct CsvStreamOptions {
    /// Zero-based indices of numeric feature columns.
    pub feature_columns: Vec<usize>,
    /// Zero-based index of the group column; distinct values become dense
    /// group labels in first-appearance order.
    pub group_column: usize,
    /// Whether to skip the first line.
    pub has_header: bool,
    /// Field delimiter.
    pub delimiter: char,
    /// Optional online standardization.
    pub standardize: Option<Standardize>,
}

/// A lazy element stream over delimited text.
///
/// Malformed rows (missing fields, non-numeric features) are skipped and
/// counted in [`CsvElementStream::skipped`], mirroring the eager loader.
pub struct CsvElementStream<R: BufRead> {
    reader: R,
    options: CsvStreamOptions,
    group_ids: HashMap<String, usize>,
    next_id: usize,
    skipped: usize,
    line: String,
    header_pending: bool,
}

impl CsvElementStream<BufReader<File>> {
    /// Opens a file-backed stream.
    pub fn open<P: AsRef<Path>>(path: P, options: CsvStreamOptions) -> Result<Self> {
        let file = File::open(path.as_ref()).map_err(|_| FdmError::NotEnoughElements {
            required: 1,
            available: 0,
        })?;
        Ok(CsvElementStream::from_reader(BufReader::new(file), options))
    }
}

impl<R: BufRead> CsvElementStream<R> {
    /// Wraps any buffered reader.
    pub fn from_reader(reader: R, options: CsvStreamOptions) -> Self {
        let header_pending = options.has_header;
        CsvElementStream {
            reader,
            options,
            group_ids: HashMap::new(),
            next_id: 0,
            skipped: 0,
            line: String::new(),
            header_pending,
        }
    }

    /// Rows skipped so far because of parse failures.
    pub fn skipped(&self) -> usize {
        self.skipped
    }

    /// Group labels discovered so far, densely numbered.
    pub fn num_groups(&self) -> usize {
        self.group_ids.len()
    }

    fn parse_current_line(&mut self) -> Option<Element> {
        let fields: Vec<&str> = self
            .line
            .trim_end()
            .split(self.options.delimiter)
            .map(str::trim)
            .collect();
        let max_needed = self
            .options
            .feature_columns
            .iter()
            .copied()
            .chain([self.options.group_column])
            .max()
            .unwrap_or(0);
        if fields.len() <= max_needed {
            return None;
        }
        let mut point = Vec::with_capacity(self.options.feature_columns.len());
        for (slot, &c) in self.options.feature_columns.iter().enumerate() {
            let v: f64 = fields[c].parse().ok().filter(|v: &f64| v.is_finite())?;
            let v = match &self.options.standardize {
                Some(s) => {
                    let sd = s.std_devs.get(slot).copied().unwrap_or(1.0);
                    let mean = s.means.get(slot).copied().unwrap_or(0.0);
                    (v - mean) / if sd > 0.0 { sd } else { 1.0 }
                }
                None => v,
            };
            point.push(v);
        }
        let key = fields[self.options.group_column].to_owned();
        let fresh = self.group_ids.len();
        let group = *self.group_ids.entry(key).or_insert(fresh);
        let id = self.next_id;
        self.next_id += 1;
        Some(Element::new(id, point, group))
    }
}

impl<R: BufRead> Iterator for CsvElementStream<R> {
    type Item = Element;

    fn next(&mut self) -> Option<Element> {
        loop {
            self.line.clear();
            match self.reader.read_line(&mut self.line) {
                Ok(0) => return None,
                Ok(_) => {}
                Err(_) => {
                    self.skipped += 1;
                    continue;
                }
            }
            if self.header_pending {
                self.header_pending = false;
                continue;
            }
            if self.line.trim().is_empty() {
                continue;
            }
            match self.parse_current_line() {
                Some(e) => return Some(e),
                None => {
                    self.skipped += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn options() -> CsvStreamOptions {
        CsvStreamOptions {
            feature_columns: vec![0, 2],
            group_column: 1,
            has_header: true,
            delimiter: ',',
            standardize: None,
        }
    }

    fn stream(content: &str, opts: CsvStreamOptions) -> CsvElementStream<Cursor<&[u8]>> {
        CsvElementStream::from_reader(Cursor::new(content.as_bytes()), opts)
    }

    #[test]
    fn yields_elements_lazily() {
        let csv = "age,sex,hours\n30,M,40\n25,F,35\n41,M,50\n";
        let mut s = stream(csv, options());
        let e0 = s.next().unwrap();
        assert_eq!(e0.id, 0);
        assert_eq!(&e0.point[..], &[30.0, 40.0]);
        assert_eq!(e0.group, 0);
        let e1 = s.next().unwrap();
        assert_eq!(e1.group, 1);
        assert!(s.next().is_some());
        assert!(s.next().is_none());
        assert_eq!(s.num_groups(), 2);
        assert_eq!(s.skipped(), 0);
    }

    #[test]
    fn skips_malformed_rows_and_counts_them() {
        let csv = "a,g,b\n1,x,2\nbad,x,2\n3,y,oops\n4,y,5\n\n";
        let mut s = stream(csv, options());
        let ids: Vec<usize> = s.by_ref().map(|e| e.id).collect();
        assert_eq!(ids, vec![0, 1]);
        assert_eq!(s.skipped(), 2);
    }

    #[test]
    fn standardization_is_applied() {
        let csv = "a,g,b\n10,x,100\n20,x,200\n";
        let mut opts = options();
        opts.standardize = Some(Standardize {
            means: vec![15.0, 150.0],
            std_devs: vec![5.0, 50.0],
        });
        let elems: Vec<Element> = stream(csv, opts).collect();
        assert_eq!(&elems[0].point[..], &[-1.0, -1.0]);
        assert_eq!(&elems[1].point[..], &[1.0, 1.0]);
    }

    #[test]
    fn zero_std_dev_does_not_divide_by_zero() {
        let csv = "a,g,b\n10,x,100\n";
        let mut opts = options();
        opts.standardize = Some(Standardize {
            means: vec![10.0, 0.0],
            std_devs: vec![0.0, 1.0],
        });
        let elems: Vec<Element> = stream(csv, opts).collect();
        assert_eq!(elems[0].point[0], 0.0);
        assert!(elems[0].point[1].is_finite());
    }

    #[test]
    fn no_header_mode() {
        let csv = "1,x,2\n3,y,4\n";
        let mut opts = options();
        opts.has_header = false;
        let elems: Vec<Element> = stream(csv, opts).collect();
        assert_eq!(elems.len(), 2);
        assert_eq!(&elems[0].point[..], &[1.0, 2.0]);
    }

    #[test]
    fn feeds_streaming_algorithm_end_to_end() {
        use fdm_core::dataset::DistanceBounds;
        use fdm_core::fairness::FairnessConstraint;
        use fdm_core::metric::Metric;
        use fdm_core::streaming::sfdm1::{Sfdm1, Sfdm1Config};

        let mut csv = String::from("x,g,y\n");
        for i in 0..60 {
            csv.push_str(&format!(
                "{},{},{}\n",
                i,
                if i % 2 == 0 { "A" } else { "B" },
                i * 2
            ));
        }
        let constraint = FairnessConstraint::new(vec![2, 2]).unwrap();
        let mut alg = Sfdm1::new(Sfdm1Config {
            constraint: constraint.clone(),
            epsilon: 0.1,
            bounds: DistanceBounds::new(1.0, 200.0).unwrap(),
            metric: Metric::Euclidean,
        })
        .unwrap();
        for e in stream(&csv, options()) {
            alg.insert(&e);
        }
        let sol = alg.finalize().unwrap();
        assert!(constraint.is_satisfied_by(&sol.group_counts(2)));
    }

    #[test]
    fn missing_file_is_an_error() {
        assert!(CsvElementStream::open("/nonexistent.csv", options()).is_err());
    }
}
