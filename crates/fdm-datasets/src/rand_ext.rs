//! Distribution samplers built on `rand` only.
//!
//! The workspace's dependency policy allows `rand` but not `rand_distr`, so
//! the handful of distributions the generators need — normal (Marsaglia
//! polar), gamma (Marsaglia–Tsang), Dirichlet (normalized gammas), and
//! weighted categorical — are implemented here with unit tests checking
//! their moments.

use rand::Rng;

/// Standard normal sample via the Marsaglia polar method.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u = rng.random::<f64>() * 2.0 - 1.0;
        let v = rng.random::<f64>() * 2.0 - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Normal sample with the given mean and standard deviation.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    mean + std_dev * standard_normal(rng)
}

/// Gamma(shape, 1) sample via Marsaglia–Tsang, with the standard boost for
/// `shape < 1`.
pub fn gamma<R: Rng + ?Sized>(rng: &mut R, shape: f64) -> f64 {
    assert!(shape > 0.0, "gamma shape must be positive");
    if shape < 1.0 {
        // Boosting: Gamma(a) = Gamma(a+1) · U^(1/a).
        let g = gamma(rng, shape + 1.0);
        let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        return g * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.random();
        if u < 1.0 - 0.0331 * x.powi(4) {
            return d * v;
        }
        if u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

/// Dirichlet sample with per-coordinate concentrations `alpha`.
pub fn dirichlet<R: Rng + ?Sized>(rng: &mut R, alpha: &[f64]) -> Vec<f64> {
    assert!(!alpha.is_empty(), "dirichlet needs at least one coordinate");
    let gammas: Vec<f64> = alpha.iter().map(|&a| gamma(rng, a)).collect();
    let sum: f64 = gammas.iter().sum();
    if sum <= 0.0 {
        // Degenerate draw (all gammas underflowed): fall back to uniform.
        let u = 1.0 / alpha.len() as f64;
        return vec![u; alpha.len()];
    }
    gammas.iter().map(|&g| g / sum).collect()
}

/// Samples an index with probability proportional to `weights`.
pub fn categorical<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "weights must have positive sum");
    let mut target = rng.random::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        target -= w;
        if target <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

/// Log-normal sample: `exp(N(mu, sigma))`.
pub fn log_normal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    fn moments(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let samples: Vec<f64> = (0..50_000).map(|_| standard_normal(&mut rng)).collect();
        let (mean, var) = moments(&samples);
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn normal_shift_and_scale() {
        let mut rng = StdRng::seed_from_u64(2);
        let samples: Vec<f64> = (0..50_000).map(|_| normal(&mut rng, 5.0, 2.0)).collect();
        let (mean, var) = moments(&samples);
        assert!((mean - 5.0).abs() < 0.05);
        assert!((var - 4.0).abs() < 0.15);
    }

    #[test]
    fn gamma_moments_shape_above_one() {
        let mut rng = StdRng::seed_from_u64(3);
        let shape = 3.5;
        let samples: Vec<f64> = (0..50_000).map(|_| gamma(&mut rng, shape)).collect();
        let (mean, var) = moments(&samples);
        assert!((mean - shape).abs() < 0.1, "mean {mean}");
        assert!((var - shape).abs() < 0.3, "var {var}");
    }

    #[test]
    fn gamma_moments_shape_below_one() {
        let mut rng = StdRng::seed_from_u64(4);
        let shape = 0.3;
        let samples: Vec<f64> = (0..100_000).map(|_| gamma(&mut rng, shape)).collect();
        let (mean, var) = moments(&samples);
        assert!((mean - shape).abs() < 0.02, "mean {mean}");
        assert!((var - shape).abs() < 0.1, "var {var}");
        assert!(samples.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn dirichlet_sums_to_one_and_tracks_alpha() {
        let mut rng = StdRng::seed_from_u64(5);
        let alpha = [2.0, 1.0, 1.0];
        let mut mean = [0.0f64; 3];
        let trials = 20_000;
        for _ in 0..trials {
            let s = dirichlet(&mut rng, &alpha);
            let total: f64 = s.iter().sum();
            assert!((total - 1.0).abs() < 1e-9);
            assert!(s.iter().all(|&x| (0.0..=1.0).contains(&x)));
            for (m, v) in mean.iter_mut().zip(&s) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= trials as f64;
        }
        // E[x_i] = alpha_i / sum(alpha) = [0.5, 0.25, 0.25].
        assert!((mean[0] - 0.5).abs() < 0.01, "{mean:?}");
        assert!((mean[1] - 0.25).abs() < 0.01, "{mean:?}");
    }

    #[test]
    fn sparse_dirichlet_is_sparse() {
        let mut rng = StdRng::seed_from_u64(6);
        let alpha = vec![0.1; 20];
        let s = dirichlet(&mut rng, &alpha);
        // With alpha = 0.1 most mass concentrates on a few coordinates.
        let big = s.iter().filter(|&&x| x > 0.05).count();
        assert!(big <= 10, "expected sparse vector, got {big} large coords");
    }

    #[test]
    fn categorical_frequencies() {
        let mut rng = StdRng::seed_from_u64(7);
        let weights = [0.7, 0.2, 0.1];
        let mut counts = [0usize; 3];
        let trials = 50_000;
        for _ in 0..trials {
            counts[categorical(&mut rng, &weights)] += 1;
        }
        for (i, &w) in weights.iter().enumerate() {
            let freq = counts[i] as f64 / trials as f64;
            assert!(
                (freq - w).abs() < 0.01,
                "index {i}: freq {freq} vs weight {w}"
            );
        }
    }

    #[test]
    fn log_normal_is_positive() {
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..1000 {
            assert!(log_normal(&mut rng, 0.0, 1.5) > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "gamma shape")]
    fn gamma_rejects_nonpositive_shape() {
        let mut rng = StdRng::seed_from_u64(9);
        gamma(&mut rng, 0.0);
    }
}
