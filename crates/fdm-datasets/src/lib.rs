//! # fdm-datasets
//!
//! Workload generators and loaders for the `fdm` workspace.
//!
//! The paper evaluates on four public real-world datasets (Adult, CelebA,
//! Census, Lyrics) and a synthetic Gaussian-blob family (Table I). The
//! synthetic family is generated exactly as described; the four real
//! datasets are **simulated** with seeded generators matching their
//! cardinalities, dimensionalities, metrics, and group skews (see
//! DESIGN.md §4 for the substitution rationale). Users with the real CSVs
//! can run the identical pipeline through [`loader`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adult;
pub mod celeba;
pub mod census;
pub mod csv_stream;
pub mod loader;
pub mod lyrics;
pub mod rand_ext;
pub mod stats;
pub mod stream;
pub mod synthetic;

pub use adult::{adult, AdultGrouping};
pub use celeba::{celeba, CelebaGrouping};
pub use census::{census, CensusGrouping};
pub use lyrics::lyrics;
pub use stream::shuffled_indices;
pub use synthetic::{synthetic_blobs, SyntheticConfig};
