//! Terminal line charts for the figure binaries.
//!
//! The paper's figures are line plots (diversity / time / space against
//! ε, k, n, or m). [`Chart`] renders multi-series data as a fixed-size
//! ASCII grid with optional log-scaled axes, so `fig*` binaries can show
//! the curve shapes directly in the terminal next to the CSV output.

/// Axis scaling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Linear axis.
    Linear,
    /// Base-10 logarithmic axis (requires positive values).
    Log,
}

/// A multi-series line chart.
#[derive(Debug, Clone)]
pub struct Chart {
    title: String,
    width: usize,
    height: usize,
    x_scale: Scale,
    y_scale: Scale,
    series: Vec<(String, Vec<(f64, f64)>)>,
}

/// Glyphs assigned to series in order.
const GLYPHS: &[char] = &['*', 'o', '+', 'x', '#', '@', '%', '&'];

impl Chart {
    /// Creates an empty chart with a plot area of `width × height` cells.
    pub fn new(title: &str, width: usize, height: usize) -> Self {
        Chart {
            title: title.to_string(),
            width: width.clamp(16, 200),
            height: height.clamp(4, 60),
            x_scale: Scale::Linear,
            y_scale: Scale::Linear,
            series: Vec::new(),
        }
    }

    /// Sets the x-axis scale.
    pub fn x_scale(mut self, scale: Scale) -> Self {
        self.x_scale = scale;
        self
    }

    /// Sets the y-axis scale.
    pub fn y_scale(mut self, scale: Scale) -> Self {
        self.y_scale = scale;
        self
    }

    /// Adds a named series of `(x, y)` points (unsorted is fine).
    pub fn add_series(&mut self, name: &str, points: Vec<(f64, f64)>) {
        self.series.push((name.to_string(), points));
    }

    /// Renders the chart; returns a plain-text block. Series with no
    /// representable points (e.g. non-positive on a log axis) are listed
    /// but not drawn.
    pub fn render(&self) -> String {
        let tx = |v: f64| -> Option<f64> {
            match self.x_scale {
                Scale::Linear => Some(v),
                Scale::Log => (v > 0.0).then(|| v.log10()),
            }
        };
        let ty = |v: f64| -> Option<f64> {
            match self.y_scale {
                Scale::Linear => Some(v),
                Scale::Log => (v > 0.0).then(|| v.log10()),
            }
        };

        let mut pts: Vec<(usize, f64, f64)> = Vec::new();
        for (si, (_, series)) in self.series.iter().enumerate() {
            for &(x, y) in series {
                if let (Some(x), Some(y)) = (tx(x), ty(y)) {
                    pts.push((si, x, y));
                }
            }
        }
        let mut out = format!("{}\n", self.title);
        if pts.is_empty() {
            out.push_str("(no representable points)\n");
            return out;
        }
        let (mut x0, mut x1) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut y0, mut y1) = (f64::INFINITY, f64::NEG_INFINITY);
        for &(_, x, y) in &pts {
            x0 = x0.min(x);
            x1 = x1.max(x);
            y0 = y0.min(y);
            y1 = y1.max(y);
        }
        if (x1 - x0).abs() < 1e-12 {
            x1 = x0 + 1.0;
        }
        if (y1 - y0).abs() < 1e-12 {
            y1 = y0 + 1.0;
        }

        let mut grid = vec![vec![' '; self.width]; self.height];
        for &(si, x, y) in &pts {
            let cx = ((x - x0) / (x1 - x0) * (self.width - 1) as f64).round() as usize;
            let cy = ((y - y0) / (y1 - y0) * (self.height - 1) as f64).round() as usize;
            let row = self.height - 1 - cy;
            let glyph = GLYPHS[si % GLYPHS.len()];
            // Later series overwrite earlier ones at collisions; acceptable
            // for a terminal sketch.
            grid[row][cx] = glyph;
        }

        let untransform = |v: f64, scale: Scale| -> f64 {
            match scale {
                Scale::Linear => v,
                Scale::Log => 10f64.powf(v),
            }
        };
        let y_hi = untransform(y1, self.y_scale);
        let y_lo = untransform(y0, self.y_scale);
        for (r, row) in grid.iter().enumerate() {
            let label = if r == 0 {
                format!("{y_hi:>9.3e} ")
            } else if r == self.height - 1 {
                format!("{y_lo:>9.3e} ")
            } else {
                " ".repeat(10)
            };
            out.push_str(&label);
            out.push('|');
            out.push_str(&row.iter().collect::<String>());
            out.push('\n');
        }
        out.push_str(&" ".repeat(10));
        out.push('+');
        out.push_str(&"-".repeat(self.width));
        out.push('\n');
        out.push_str(&format!(
            "{:>10} {:<.3e}{}{:.3e}\n",
            "",
            untransform(x0, self.x_scale),
            " ".repeat(self.width.saturating_sub(20)),
            untransform(x1, self.x_scale),
        ));
        for (si, (name, _)) in self.series.iter().enumerate() {
            out.push_str(&format!("  {} {}\n", GLYPHS[si % GLYPHS.len()], name));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_basic_chart() {
        let mut chart = Chart::new("diversity vs k", 40, 10);
        chart.add_series("SFDM2", vec![(5.0, 4.0), (10.0, 3.5), (20.0, 3.0)]);
        chart.add_series("FairFlow", vec![(5.0, 2.0), (10.0, 1.5), (20.0, 1.0)]);
        let s = chart.render();
        assert!(s.starts_with("diversity vs k"));
        assert!(s.contains('*'), "first series glyph present");
        assert!(s.contains('o'), "second series glyph present");
        assert!(s.contains("SFDM2"));
        assert!(s.contains("FairFlow"));
    }

    #[test]
    fn log_axis_drops_nonpositive_points() {
        let mut chart = Chart::new("t", 30, 8).y_scale(Scale::Log);
        chart.add_series("a", vec![(1.0, 0.0), (2.0, -1.0)]);
        let s = chart.render();
        assert!(s.contains("no representable points"));
    }

    #[test]
    fn log_axis_spreads_magnitudes() {
        let mut chart = Chart::new("t", 60, 12)
            .x_scale(Scale::Log)
            .y_scale(Scale::Log);
        chart.add_series("streaming", vec![(1e3, 1e-6), (1e4, 1e-6), (1e5, 1e-6)]);
        chart.add_series("offline", vec![(1e3, 1e-3), (1e4, 1e-2), (1e5, 1e-1)]);
        let s = chart.render();
        // Streaming (flat, bottom) and offline (rising) must both draw.
        assert!(s.matches('*').count() >= 3);
        assert!(s.matches('o').count() >= 3);
    }

    #[test]
    fn degenerate_single_point() {
        let mut chart = Chart::new("p", 20, 6);
        chart.add_series("one", vec![(1.0, 1.0)]);
        let s = chart.render();
        assert!(s.contains('*'));
    }

    #[test]
    fn dimensions_are_clamped() {
        let chart = Chart::new("c", 1, 1);
        assert_eq!(chart.width, 16);
        assert_eq!(chart.height, 4);
    }
}
