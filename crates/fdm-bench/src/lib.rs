//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation section (§V).
//!
//! One binary per experiment (see `src/bin/`) prints the same rows/series
//! the paper reports and writes CSV under `results/`. The library provides:
//!
//! * [`measure`] — algorithm runners with the paper's three performance
//!   measures: solution diversity, time (average per-element *update time*
//!   for the streaming algorithms, total runtime for the offline ones — the
//!   paper's §V-A convention), and the number of stored distinct elements;
//! * [`workloads`] — the Table I dataset/grouping matrix with paper-sized
//!   and scaled-down instantiations;
//! * [`report`] — fixed-width table printing and CSV output;
//! * [`cli`] — a tiny flag parser shared by the experiment binaries.
//!
//! Absolute numbers differ from the paper (Rust vs Python, this machine vs
//! the authors', simulated vs real data); the reproduction target is the
//! *shape*: who wins, by roughly what factor, and how the curves move with
//! `ε`, `k`, `n`, and `m` (see EXPERIMENTS.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod experiments;
pub mod measure;
pub mod plot;
pub mod report;
pub mod workloads;

pub use measure::{run_algorithm, Algo, RunResult};
pub use workloads::Workload;
