//! The Table I dataset/grouping matrix, with paper-sized (`--full`) and
//! scaled-down (default / `--quick`) instantiations.

use fdm_core::dataset::Dataset;
use fdm_core::error::Result;
use fdm_datasets::adult::{adult, AdultGrouping, ADULT_FULL_N};
use fdm_datasets::celeba::{celeba, CelebaGrouping, CELEBA_FULL_N};
use fdm_datasets::census::{census, CensusGrouping, CENSUS_FULL_N};
use fdm_datasets::lyrics::{lyrics, LYRICS_FULL_N, LYRICS_GENRES};
use fdm_datasets::synthetic::{synthetic_blobs, SyntheticConfig};

/// How large the generated instances are.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SizeMode {
    /// Tiny instances for smoke runs (~2k rows).
    Quick,
    /// Laptop-friendly defaults (tens of thousands of rows). The streaming
    /// algorithms' per-element cost and space are `n`-independent, so the
    /// figure shapes match the paper's at a fraction of the runtime.
    #[default]
    Default,
    /// The paper's exact cardinalities (Census is 2.4M rows).
    Full,
}

/// One dataset × grouping combination from Table I / Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Adult, groups by sex (m = 2).
    AdultSex,
    /// Adult, groups by race (m = 5).
    AdultRace,
    /// Adult, groups by sex+race (m = 10).
    AdultSexRace,
    /// CelebA, groups by sex (m = 2).
    CelebaSex,
    /// CelebA, groups by age (m = 2).
    CelebaAge,
    /// CelebA, groups by sex+age (m = 4).
    CelebaSexAge,
    /// Census, groups by sex (m = 2).
    CensusSex,
    /// Census, groups by age (m = 7).
    CensusAge,
    /// Census, groups by sex+age (m = 14).
    CensusSexAge,
    /// Lyrics, groups by genre (m = 15).
    LyricsGenre,
    /// Synthetic blobs with explicit `n` and `m`.
    Synthetic {
        /// Number of points.
        n: usize,
        /// Number of groups.
        m: usize,
    },
}

impl Workload {
    /// All Table II rows in paper order.
    pub fn table2_rows() -> Vec<Workload> {
        vec![
            Workload::AdultSex,
            Workload::AdultRace,
            Workload::AdultSexRace,
            Workload::CelebaSex,
            Workload::CelebaAge,
            Workload::CelebaSexAge,
            Workload::CensusSex,
            Workload::CensusAge,
            Workload::CensusSexAge,
            Workload::LyricsGenre,
        ]
    }

    /// Display name matching the paper ("Adult (Sex)", …).
    pub fn name(&self) -> String {
        match self {
            Workload::AdultSex => "Adult (Sex)".into(),
            Workload::AdultRace => "Adult (Race)".into(),
            Workload::AdultSexRace => "Adult (Sex+Race)".into(),
            Workload::CelebaSex => "CelebA (Sex)".into(),
            Workload::CelebaAge => "CelebA (Age)".into(),
            Workload::CelebaSexAge => "CelebA (Sex+Age)".into(),
            Workload::CensusSex => "Census (Sex)".into(),
            Workload::CensusAge => "Census (Age)".into(),
            Workload::CensusSexAge => "Census (Sex+Age)".into(),
            Workload::LyricsGenre => "Lyrics (Genre)".into(),
            Workload::Synthetic { n, m } => format!("Synthetic (n={n}, m={m})"),
        }
    }

    /// Number of groups `m`.
    pub fn num_groups(&self) -> usize {
        match self {
            Workload::AdultSex
            | Workload::CelebaSex
            | Workload::CelebaAge
            | Workload::CensusSex => 2,
            Workload::CelebaSexAge => 4,
            Workload::AdultRace => 5,
            Workload::CensusAge => 7,
            Workload::AdultSexRace => 10,
            Workload::CensusSexAge => 14,
            Workload::LyricsGenre => LYRICS_GENRES,
            Workload::Synthetic { m, .. } => *m,
        }
    }

    /// The paper's per-dataset `ε` (0.05 for Lyrics, 0.1 otherwise).
    pub fn default_epsilon(&self) -> f64 {
        match self {
            Workload::LyricsGenre => 0.05,
            _ => 0.1,
        }
    }

    /// Instance size for the given mode.
    pub fn size(&self, mode: SizeMode) -> usize {
        let (quick, default, full) = match self {
            Workload::AdultSex | Workload::AdultRace | Workload::AdultSexRace => {
                (2_000, ADULT_FULL_N, ADULT_FULL_N)
            }
            Workload::CelebaSex | Workload::CelebaAge | Workload::CelebaSexAge => {
                (2_000, 50_000, CELEBA_FULL_N)
            }
            Workload::CensusSex | Workload::CensusAge | Workload::CensusSexAge => {
                (2_000, 100_000, CENSUS_FULL_N)
            }
            Workload::LyricsGenre => (2_000, 40_000, LYRICS_FULL_N),
            Workload::Synthetic { n, .. } => (*n.min(&2_000), *n, *n),
        };
        match mode {
            SizeMode::Quick => quick,
            SizeMode::Default => default,
            SizeMode::Full => full,
        }
    }

    /// Builds the dataset (seeded, deterministic).
    pub fn build(&self, mode: SizeMode, seed: u64) -> Result<Dataset> {
        let n = self.size(mode);
        match self {
            Workload::AdultSex => adult(AdultGrouping::Sex, n, seed),
            Workload::AdultRace => adult(AdultGrouping::Race, n, seed),
            Workload::AdultSexRace => adult(AdultGrouping::SexRace, n, seed),
            Workload::CelebaSex => celeba(CelebaGrouping::Sex, n, seed),
            Workload::CelebaAge => celeba(CelebaGrouping::Age, n, seed),
            Workload::CelebaSexAge => celeba(CelebaGrouping::SexAge, n, seed),
            Workload::CensusSex => census(CensusGrouping::Sex, n, seed),
            Workload::CensusAge => census(CensusGrouping::Age, n, seed),
            Workload::CensusSexAge => census(CensusGrouping::SexAge, n, seed),
            Workload::LyricsGenre => lyrics(n, seed),
            Workload::Synthetic { m, .. } => synthetic_blobs(SyntheticConfig {
                n,
                m: *m,
                blobs: 10,
                seed,
                dim: 2,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_rows_match_paper_order_and_m() {
        let rows = Workload::table2_rows();
        assert_eq!(rows.len(), 10);
        let ms: Vec<usize> = rows.iter().map(|w| w.num_groups()).collect();
        assert_eq!(ms, vec![2, 5, 10, 2, 2, 4, 2, 7, 14, 15]);
    }

    #[test]
    fn full_sizes_match_table1() {
        assert_eq!(Workload::AdultSex.size(SizeMode::Full), 48_842);
        assert_eq!(Workload::CelebaSex.size(SizeMode::Full), 202_599);
        assert_eq!(Workload::CensusSex.size(SizeMode::Full), 2_426_116);
        assert_eq!(Workload::LyricsGenre.size(SizeMode::Full), 122_448);
    }

    #[test]
    fn epsilon_defaults() {
        assert_eq!(Workload::LyricsGenre.default_epsilon(), 0.05);
        assert_eq!(Workload::AdultSex.default_epsilon(), 0.1);
    }

    #[test]
    fn quick_instances_build() {
        for w in Workload::table2_rows() {
            let d = w.build(SizeMode::Quick, 1).unwrap();
            assert_eq!(d.len(), 2_000);
            assert_eq!(d.num_groups(), w.num_groups());
        }
    }

    #[test]
    fn synthetic_workload() {
        let w = Workload::Synthetic { n: 1_000, m: 6 };
        let d = w.build(SizeMode::Default, 2).unwrap();
        assert_eq!(d.len(), 1_000);
        assert_eq!(d.num_groups(), 6);
        assert!(w.name().contains("n=1000"));
    }
}
