//! Minimal flag parsing shared by the experiment binaries.
//!
//! Supported flags (all optional):
//!
//! * `--quick` / `--full` — instance size (default: laptop-friendly);
//! * `--trials N` — stream permutations to average (default 3; paper 10);
//! * `--k N` — solution size where the experiment doesn't sweep it
//!   (default 20, the paper's Table II setting);
//! * `--seed N` — dataset generation seed (default 42);
//! * `--shards N` — shard count for the streaming algorithms (default 1 =
//!   unsharded; K > 1 routes streams through `ShardedStream`);
//! * `--snapshot-every N` — checkpoint each streaming run every N arrivals
//!   (table2 writes `results/snapshots/table2-<algo>-<dataset>.snap`);
//! * `--restore-from PATH` — resume each streaming run from a snapshot
//!   (the already-processed prefix of the permuted stream is skipped, so a
//!   resumed run finishes with results identical to an uninterrupted one;
//!   incompatible snapshots are rejected with a typed error);
//! * `--snapshot-format json|bin` — encoding for written checkpoints
//!   (default `bin`, the v2 binary codec; resume reads both);
//! * `--algorithm NAME` — add an extra streaming scenario to experiments
//!   that support it (today: `sliding` on table2);
//! * `--window N` — sliding-window size for `--algorithm sliding`
//!   (required with it, rejected without it).

use crate::workloads::SizeMode;
use fdm_core::persist::SnapshotFormat;

/// Parsed common options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Options {
    /// Instance size mode.
    pub size: SizeMode,
    /// Number of averaged stream permutations.
    pub trials: usize,
    /// Solution size `k`.
    pub k: usize,
    /// Dataset seed.
    pub seed: u64,
    /// Shard count for the streaming algorithms (1 = unsharded).
    pub shards: usize,
    /// Checkpoint cadence for the streaming algorithms (arrivals between
    /// snapshots); `None` disables checkpointing.
    pub snapshot_every: Option<usize>,
    /// Snapshot to resume the streaming runs from.
    pub restore_from: Option<String>,
    /// Encoding for written checkpoints (`json` or `bin`; resume sniffs
    /// the format either way).
    pub snapshot_format: SnapshotFormat,
    /// Extra streaming scenario to run (today: `sliding` on table2).
    pub algorithm: Option<String>,
    /// Sliding-window size for `--algorithm sliding`.
    pub window: usize,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            size: SizeMode::Default,
            trials: 3,
            k: 20,
            seed: 42,
            shards: 1,
            snapshot_every: None,
            restore_from: None,
            snapshot_format: SnapshotFormat::default(),
            algorithm: None,
            window: 0,
        }
    }
}

impl Options {
    /// Parses from an argument iterator (skip the program name first).
    ///
    /// Unknown flags abort with a usage message, so typos don't silently
    /// run the default experiment.
    pub fn parse<I: Iterator<Item = String>>(args: I) -> Result<Options, String> {
        let mut opts = Options::default();
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => opts.size = SizeMode::Quick,
                "--full" => opts.size = SizeMode::Full,
                "--trials" => opts.trials = take_num(&mut args, "--trials")? as usize,
                "--k" => opts.k = take_num(&mut args, "--k")? as usize,
                "--seed" => opts.seed = take_num(&mut args, "--seed")?,
                "--shards" => opts.shards = take_num(&mut args, "--shards")? as usize,
                "--snapshot-every" => {
                    opts.snapshot_every = Some(take_num(&mut args, "--snapshot-every")? as usize)
                }
                "--restore-from" => {
                    opts.restore_from = Some(
                        args.next()
                            .ok_or_else(|| "--restore-from requires a path".to_string())?,
                    )
                }
                "--snapshot-format" => {
                    let value = args
                        .next()
                        .ok_or_else(|| "--snapshot-format requires json or bin".to_string())?;
                    opts.snapshot_format = SnapshotFormat::parse(&value)?;
                }
                "--algorithm" => {
                    let value = args
                        .next()
                        .ok_or_else(|| "--algorithm requires a name".to_string())?;
                    if !fdm_core::streaming::summary::is_known_algorithm(&value) {
                        return Err(format!(
                            "--algorithm: unknown algorithm `{value}` (expected one of: {})",
                            fdm_core::streaming::summary::algorithm_tags().join(", ")
                        ));
                    }
                    opts.algorithm = Some(value);
                }
                "--window" => opts.window = take_num(&mut args, "--window")? as usize,
                "--help" | "-h" => {
                    return Err(
                        "usage: [--quick|--full] [--trials N] [--k N] [--seed N] [--shards N] \
                         [--snapshot-every N] [--restore-from PATH] [--snapshot-format json|bin] \
                         [--algorithm sliding --window N]"
                            .to_string(),
                    )
                }
                other => return Err(format!("unknown flag {other}; try --help")),
            }
        }
        if opts.trials == 0 {
            return Err("--trials must be at least 1".to_string());
        }
        if opts.shards == 0 {
            return Err("--shards must be at least 1".to_string());
        }
        if opts.snapshot_every == Some(0) {
            return Err("--snapshot-every must be at least 1".to_string());
        }
        if opts.algorithm.as_deref() == Some("sliding") && opts.window < 2 {
            return Err("--algorithm sliding requires --window N (N ≥ 2)".to_string());
        }
        if opts.window != 0 && opts.algorithm.as_deref() != Some("sliding") {
            // Mirror the registry/protocol contract: a window on a
            // non-sliding algorithm is an error everywhere, never ignored.
            return Err("--window requires --algorithm sliding".to_string());
        }
        Ok(opts)
    }

    /// Parses from the process arguments, exiting with a message on error.
    pub fn from_env() -> Options {
        match Options::parse(std::env::args().skip(1)) {
            Ok(o) => o,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }
}

fn take_num<I: Iterator<Item = String>>(
    args: &mut std::iter::Peekable<I>,
    flag: &str,
) -> Result<u64, String> {
    let value = args
        .next()
        .ok_or_else(|| format!("{flag} requires a value"))?;
    value
        .parse()
        .map_err(|_| format!("{flag}: invalid number {value:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Options, String> {
        Options::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let o = parse(&[]).unwrap();
        assert_eq!(o, Options::default());
        assert_eq!(o.trials, 3);
        assert_eq!(o.k, 20);
    }

    #[test]
    fn parses_flags() {
        let o = parse(&["--full", "--trials", "10", "--k", "30", "--seed", "7"]).unwrap();
        assert_eq!(o.size, SizeMode::Full);
        assert_eq!(o.trials, 10);
        assert_eq!(o.k, 30);
        assert_eq!(o.seed, 7);
    }

    #[test]
    fn quick_mode() {
        assert_eq!(parse(&["--quick"]).unwrap().size, SizeMode::Quick);
    }

    #[test]
    fn rejects_unknown_and_bad_values() {
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--trials"]).is_err());
        assert!(parse(&["--trials", "abc"]).is_err());
        assert!(parse(&["--trials", "0"]).is_err());
        assert!(parse(&["--snapshot-every", "0"]).is_err());
        assert!(parse(&["--restore-from"]).is_err());
    }

    #[test]
    fn parses_persistence_flags() {
        let o = parse(&["--snapshot-every", "500", "--restore-from", "/tmp/x.snap"]).unwrap();
        assert_eq!(o.snapshot_every, Some(500));
        assert_eq!(o.restore_from.as_deref(), Some("/tmp/x.snap"));
        let o = parse(&[]).unwrap();
        assert_eq!(o.snapshot_every, None);
        assert_eq!(o.restore_from, None);
    }

    #[test]
    fn parses_sliding_scenario_flags() {
        let o = parse(&["--algorithm", "sliding", "--window", "500"]).unwrap();
        assert_eq!(o.algorithm.as_deref(), Some("sliding"));
        assert_eq!(o.window, 500);
        assert!(parse(&["--algorithm", "sliding"]).is_err()); // no window
        assert!(parse(&["--algorithm", "sliding", "--window", "1"]).is_err());
        assert!(parse(&["--window", "100"]).is_err()); // window alone
        assert!(parse(&["--algorithm", "bogus", "--window", "100"]).is_err());
        // A window on a non-sliding algorithm must error, not be ignored.
        assert!(parse(&["--algorithm", "sfdm2", "--window", "100"]).is_err());
    }

    #[test]
    fn help_is_an_err_with_usage() {
        let msg = parse(&["--help"]).unwrap_err();
        assert!(msg.contains("usage"));
    }
}
