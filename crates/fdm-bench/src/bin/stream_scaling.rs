//! Thread-scaling harness for sharded stream ingestion.
//!
//! Rayon's global pool reads `RAYON_NUM_THREADS` exactly once per process,
//! so a sweep cannot flip thread counts in-process: the parent re-executes
//! *itself* (`--worker N`) once per requested count with the environment
//! variable pinned, and each child ingests the same synthetic SFDM2
//! workload through a [`ShardedStream`] with `K = N` shards, printing one
//! JSON object on stdout. The parent aggregates the per-count results into
//! a `BENCH_scaling.json` array.
//!
//! Run: `cargo run --release -p fdm-bench --bin stream_scaling -- \
//!           --threads 1,2,4,8 --out BENCH_scaling.json`
//!
//! Flags:
//! - `--threads A,B,...` — comma-separated thread/shard counts (default `1,2`).
//! - `--out PATH` — output JSON path (default `BENCH_scaling.json`).
//! - `FDM_BENCH_FAST=1` shrinks the stream for CI smoke runs.
//!
//! Without `--features parallel` the shards are processed sequentially and
//! the sweep measures the sharding overhead alone; the JSON records which
//! mode was active so the two are never compared by accident.

use fdm_core::fairness::FairnessConstraint;
use fdm_core::point::Element;
use fdm_core::streaming::sfdm2::{Sfdm2, Sfdm2Config};
use fdm_core::streaming::sharded::ShardedStream;
use fdm_datasets::synthetic::{synthetic_blobs, SyntheticConfig};
use std::time::Instant;

const BATCH: usize = 512;
const DIM: usize = 64;

fn stream_len() -> usize {
    if std::env::var("FDM_BENCH_FAST").is_ok() {
        2_000
    } else {
        20_000
    }
}

fn parallel_feature() -> bool {
    cfg!(feature = "parallel")
}

/// Ingests the shared workload under the current process's rayon pool and
/// prints one JSON result object on stdout.
fn worker(threads: usize) {
    let n = stream_len();
    let data = synthetic_blobs(SyntheticConfig {
        n,
        m: 2,
        blobs: 10,
        seed: 1,
        dim: DIM,
    })
    .expect("synthetic workload generation cannot fail");
    let bounds = data
        .sampled_distance_bounds(300, 4.0)
        .expect("bounds sampling cannot fail");
    let config = Sfdm2Config {
        constraint: FairnessConstraint::equal_representation(20, 2).unwrap(),
        epsilon: 0.1,
        bounds,
        metric: data.metric(),
    };
    let elements: Vec<Element> = data.iter().collect();

    // One warm-up pass primes the rayon pool and the allocator so the
    // measured pass sees steady state.
    let mut warm: ShardedStream<Sfdm2> =
        ShardedStream::new(config.clone(), threads.max(1)).unwrap();
    for chunk in elements.chunks(BATCH).take(2) {
        warm.insert_batch(chunk);
    }

    let mut alg: ShardedStream<Sfdm2> = ShardedStream::new(config, threads.max(1)).unwrap();
    let start = Instant::now();
    for chunk in elements.chunks(BATCH) {
        alg.insert_batch(chunk);
    }
    let elapsed = start.elapsed();
    let solution = alg.finalize().expect("workload must stay feasible");

    let elapsed_ns = elapsed.as_nanos() as f64;
    let mut result = serde_json::Map::new();
    let (f32_hits, f32_fallbacks) = alg.prefilter_counters();
    let fields: [(&str, serde_json::Value); 13] = [
        (
            "id",
            serde_json::json!(format!("stream_scaling/sfdm2_d{DIM}/threads/{threads}")),
        ),
        ("threads", serde_json::json!(threads as f64)),
        ("shards", serde_json::json!(threads.max(1) as f64)),
        ("elements", serde_json::json!(n as f64)),
        ("parallel_feature", serde_json::json!(parallel_feature())),
        (
            "kernel",
            serde_json::json!(fdm_core::kernel::active_kernel()),
        ),
        ("elapsed_ns", serde_json::json!(elapsed_ns)),
        ("per_element_ns", serde_json::json!(elapsed_ns / n as f64)),
        (
            "throughput_elems_per_s",
            serde_json::json!(n as f64 / elapsed.as_secs_f64()),
        ),
        (
            "stored_elements",
            serde_json::json!(alg.stored_elements() as f64),
        ),
        ("diversity", serde_json::json!(solution.diversity)),
        ("f32_hits", serde_json::json!(f32_hits as f64)),
        ("f32_fallbacks", serde_json::json!(f32_fallbacks as f64)),
    ];
    for (key, value) in fields {
        result.insert(key.to_string(), value);
    }
    let line = serde_json::to_string(&serde_json::Value::Object(result))
        .expect("JSON serialization cannot fail");
    println!("{line}");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut threads_spec = String::from("1,2");
    let mut out = String::from("BENCH_scaling.json");
    let mut worker_count: Option<usize> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--threads" => {
                i += 1;
                threads_spec = args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--threads requires a comma-separated list");
                    std::process::exit(2);
                });
            }
            "--out" => {
                i += 1;
                out = args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                });
            }
            "--worker" => {
                i += 1;
                worker_count = Some(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .expect("--worker requires a thread count"),
                );
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    if let Some(threads) = worker_count {
        worker(threads);
        return;
    }

    let counts: Vec<usize> = threads_spec
        .split(',')
        .filter(|s| !s.trim().is_empty())
        .map(|s| {
            s.trim().parse().unwrap_or_else(|_| {
                eprintln!("invalid thread count {s:?}");
                std::process::exit(2);
            })
        })
        .collect();
    if counts.is_empty() {
        eprintln!("--threads produced an empty sweep");
        std::process::exit(2);
    }

    let exe = std::env::current_exe().expect("cannot locate own executable");
    let mut results = Vec::new();
    for &t in &counts {
        eprintln!("stream_scaling: running worker with {t} thread(s)...");
        let output = std::process::Command::new(&exe)
            .args(["--worker", &t.to_string()])
            .env("RAYON_NUM_THREADS", t.to_string())
            .output()
            .expect("failed to spawn worker process");
        if !output.status.success() {
            eprintln!(
                "worker for {t} thread(s) failed:\n{}",
                String::from_utf8_lossy(&output.stderr)
            );
            std::process::exit(1);
        }
        let stdout = String::from_utf8_lossy(&output.stdout);
        let line = stdout
            .lines()
            .rev()
            .find(|l| l.trim_start().starts_with('{'))
            .expect("worker printed no JSON result");
        let value: serde_json::Value = serde_json::from_str(line).expect("worker JSON must parse");
        eprintln!(
            "stream_scaling: threads={t} per_element_ns={:.0} throughput={:.0}/s",
            value["per_element_ns"].as_f64().unwrap_or(f64::NAN),
            value["throughput_elems_per_s"].as_f64().unwrap_or(f64::NAN),
        );
        results.push(value);
    }

    let json = serde_json::to_string_pretty(&results).expect("JSON serialization cannot fail");
    std::fs::write(&out, format!("{json}\n")).expect("cannot write output file");
    eprintln!("stream_scaling: wrote {} entries to {out}", results.len());
}
