//! Fig. 11 — scalability with the number of groups `m` on synthetic data
//! (n = 10⁵, k = 20).
//!
//! Sweeps m ∈ {2, 4, ..., 20} for FairFlow and SFDM2 (FairSwap/SFDM1 appear
//! only at m = 2). Expected shape: SFDM2's diversity decays gently with m
//! and stays a multiple of FairFlow's (up to 3× in the paper for m > 10),
//! while SFDM2's post-processing time grows quadratically in m.
//!
//! Run: `cargo run --release -p fdm-bench --bin fig11_scal_m [--quick|--full]`

use std::collections::BTreeMap;

use fdm_bench::cli::Options;
use fdm_bench::measure::{run_averaged, Algo};
use fdm_bench::plot::Chart;
use fdm_bench::report::{fmt_secs, Table};
use fdm_bench::workloads::{SizeMode, Workload};
use fdm_core::fairness::FairnessConstraint;

fn main() {
    let opts = Options::from_env();
    let n = match opts.size {
        SizeMode::Quick => 5_000,
        SizeMode::Default => 100_000,
        SizeMode::Full => 100_000,
    };

    let mut table = Table::new(vec!["m", "algo", "diversity", "time(s)", "post t(s)"]);
    let mut div_series: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
    for m in (2..=20).step_by(2) {
        let k = opts.k.max(m);
        let constraint = FairnessConstraint::equal_representation(k, m).expect("constraint");
        let workload = Workload::Synthetic { n, m };
        let dataset = workload.build(opts.size, opts.seed).expect("dataset build");
        eprintln!("running synthetic m = {m} (n = {n}) ...");
        let mut algos = vec![Algo::FairFlow, Algo::Sfdm2];
        if m == 2 {
            algos.insert(0, Algo::FairSwap);
            algos.insert(2, Algo::Sfdm1);
        }
        for algo in algos {
            let r = run_averaged(&dataset, algo, &constraint, 0.1, opts.trials).expect("run");
            table.push_row(vec![
                m.to_string(),
                r.algo.to_string(),
                format!("{:.4}", r.diversity),
                fmt_secs(r.paper_time_s()),
                r.post_time_s.map(fmt_secs).unwrap_or_else(|| "-".into()),
            ]);
            div_series
                .entry(r.algo.to_string())
                .or_default()
                .push((m as f64, r.diversity));
        }
    }

    println!("\nFig. 11 (synthetic, n = {n}, k = {}; vs m):", opts.k);
    println!("{}", table.render());
    let mut chart = Chart::new("diversity vs m", 64, 12);
    for (algo, pts) in &div_series {
        if pts.len() > 1 {
            chart.add_series(algo, pts.clone());
        }
    }
    println!("{}", chart.render());
    let path = table.write_csv("fig11_scal_m").expect("write CSV");
    println!("wrote {}", path.display());
}
