//! Fig. 9 — equal representation (ER) vs proportional representation (PR)
//! on Adult (k = 20), whose groups are highly skewed (67% male, 87% White).
//!
//! Panel (a): sex groups (m = 2) with FairSwap, FairFlow, SFDM1, SFDM2;
//! panel (b): race groups (m = 5) with FairFlow and SFDM2. Expected shape:
//! PR diversity slightly above ER (PR sits closer to the unconstrained
//! optimum) and PR running time slightly below (fewer balancing steps).
//!
//! Run: `cargo run --release -p fdm-bench --bin fig9_er_pr [--quick|--full]`

use fdm_bench::cli::Options;
use fdm_bench::measure::{run_averaged, Algo};
use fdm_bench::report::{fmt_secs, Table};
use fdm_bench::workloads::Workload;
use fdm_core::fairness::FairnessConstraint;

fn main() {
    let opts = Options::from_env();
    let panels: Vec<(Workload, Vec<Algo>)> = vec![
        (
            Workload::AdultSex,
            vec![Algo::FairSwap, Algo::FairFlow, Algo::Sfdm1, Algo::Sfdm2],
        ),
        (Workload::AdultRace, vec![Algo::FairFlow, Algo::Sfdm2]),
    ];

    let mut table = Table::new(vec![
        "panel",
        "notion",
        "algo",
        "quotas",
        "diversity",
        "time(s)",
    ]);
    for (workload, algos) in panels {
        let m = workload.num_groups();
        let k = opts.k.max(m);
        let dataset = workload.build(opts.size, opts.seed).expect("dataset build");
        eprintln!("running {} (n = {}) ...", workload.name(), dataset.len());
        let er = FairnessConstraint::equal_representation(k, m).expect("ER");
        let pr =
            FairnessConstraint::proportional_representation(k, dataset.group_sizes()).expect("PR");
        for (notion, constraint) in [("ER", &er), ("PR", &pr)] {
            for &algo in &algos {
                let r = run_averaged(
                    &dataset,
                    algo,
                    constraint,
                    workload.default_epsilon(),
                    opts.trials,
                )
                .expect("run");
                table.push_row(vec![
                    workload.name(),
                    notion.to_string(),
                    r.algo.to_string(),
                    format!("{:?}", constraint.quotas()),
                    format!("{:.4}", r.diversity),
                    fmt_secs(r.paper_time_s()),
                ]);
            }
        }
    }

    println!("\nFig. 9 (ER vs PR on Adult, k = {}):", opts.k);
    println!("{}", table.render());
    let path = table.write_csv("fig9_er_pr").expect("write CSV");
    println!("wrote {}", path.display());
}
