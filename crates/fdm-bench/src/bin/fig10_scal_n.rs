//! Fig. 10 — scalability with the dataset size `n` on synthetic data
//! (k = 20; panels m = 2 and m = 10).
//!
//! `n` sweeps 10³..10⁵ by default (10³..10⁶ with `--full`; the paper goes
//! to 10⁷ — pass `--full` twice the patience). Expected shape: offline
//! runtimes grow linearly in `n` while the streaming algorithms' update
//! time is flat; diversities stay close across `n`, with SFDM2 widening its
//! lead over FairFlow at m = 10.
//!
//! Run: `cargo run --release -p fdm-bench --bin fig10_scal_n [--quick|--full]`

use std::collections::BTreeMap;

use fdm_bench::cli::Options;
use fdm_bench::measure::{run_averaged, Algo};
use fdm_bench::plot::{Chart, Scale};
use fdm_bench::report::{fmt_secs, Table};
use fdm_bench::workloads::{SizeMode, Workload};
use fdm_core::fairness::FairnessConstraint;

fn main() {
    let opts = Options::from_env();
    let max_exp = match opts.size {
        SizeMode::Quick => 4,
        SizeMode::Default => 5,
        SizeMode::Full => 6,
    };
    let ns: Vec<usize> = (3..=max_exp).map(|e| 10usize.pow(e)).collect();

    let mut table = Table::new(vec!["m", "n", "algo", "diversity", "time(s)"]);
    // (m, algo) -> (n, time) series for the terminal chart.
    let mut time_series: BTreeMap<(usize, String), Vec<(f64, f64)>> = BTreeMap::new();
    for m in [2usize, 10] {
        let k = opts.k.max(m);
        let constraint = FairnessConstraint::equal_representation(k, m).expect("constraint");
        for &n in &ns {
            let workload = Workload::Synthetic { n, m };
            let dataset = workload.build(opts.size, opts.seed).expect("dataset build");
            eprintln!("running synthetic n = {n}, m = {m} ...");
            let mut algos = vec![Algo::FairFlow, Algo::Sfdm2];
            if m == 2 {
                algos.insert(0, Algo::FairSwap);
                algos.insert(2, Algo::Sfdm1);
            }
            for algo in algos {
                let r = run_averaged(&dataset, algo, &constraint, 0.1, opts.trials).expect("run");
                table.push_row(vec![
                    m.to_string(),
                    n.to_string(),
                    r.algo.to_string(),
                    format!("{:.4}", r.diversity),
                    fmt_secs(r.paper_time_s()),
                ]);
                time_series
                    .entry((m, r.algo.to_string()))
                    .or_default()
                    .push((n as f64, r.paper_time_s()));
            }
        }
    }

    println!(
        "\nFig. 10 (synthetic, k = {}; diversity and time vs n):",
        opts.k
    );
    println!("{}", table.render());
    for m in [2usize, 10] {
        let mut chart = Chart::new(&format!("time vs n (m = {m}, log-log)"), 64, 12)
            .x_scale(Scale::Log)
            .y_scale(Scale::Log);
        for ((sm, algo), pts) in &time_series {
            if *sm == m {
                chart.add_series(algo, pts.clone());
            }
        }
        println!("{}", chart.render());
    }
    let path = table.write_csv("fig10_scal_n").expect("write CSV");
    println!("wrote {}", path.display());
}
