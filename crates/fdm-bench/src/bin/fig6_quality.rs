//! Fig. 6 — solution quality with varying `k` (eight dataset/group panels).
//!
//! GMM's unconstrained diversity is the gray reference line; FairSwap /
//! FairGMM / SFDM1 appear only where applicable (m = 2, and k ≤ 10 for
//! FairGMM). Expected shape: diversity decreases with k; the fair solutions
//! sit slightly below GMM at m = 2 and further below for large m; SFDM2
//! dominates FairFlow throughout.
//!
//! Run: `cargo run --release -p fdm-bench --bin fig6_quality [--quick|--full]`

use fdm_bench::cli::Options;
use fdm_bench::experiments::sweep_k;
use fdm_bench::report::Table;

fn main() {
    let opts = Options::from_env();
    let cells = sweep_k(&opts).expect("sweep");
    let mut table = Table::new(vec!["dataset", "k", "algo", "diversity"]);
    for (workload, k, r) in &cells {
        table.push_row(vec![
            workload.name(),
            k.to_string(),
            r.algo.to_string(),
            format!("{:.4}", r.diversity),
        ]);
    }
    println!("\nFig. 6 (diversity vs k):");
    println!("{}", table.render());
    let path = table.write_csv("fig6_quality").expect("write CSV");
    println!("wrote {}", path.display());
}
