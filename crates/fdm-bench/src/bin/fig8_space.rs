//! Fig. 8 — number of stored elements with varying `k` (Adult and Census).
//!
//! Panels: Adult with SFDM1 (sex) and SFDM2 (sex and race groupings);
//! Census with SFDM1 (sex) and SFDM2 (sex and age groupings). Expected
//! shape: linear growth in `k`, with SFDM2 above SFDM1 (its group-specific
//! candidates have capacity `k` rather than `k_i`) and growing with `m`.
//!
//! Run: `cargo run --release -p fdm-bench --bin fig8_space [--quick|--full]`

use fdm_bench::cli::Options;
use fdm_bench::measure::{run_averaged, Algo};
use fdm_bench::report::Table;
use fdm_bench::workloads::Workload;
use fdm_core::fairness::FairnessConstraint;

fn main() {
    let opts = Options::from_env();
    // (panel label, workload, algorithm, series label)
    let series: Vec<(&str, Workload, Algo, &str)> = vec![
        ("Adult", Workload::AdultSex, Algo::Sfdm1, "SFDM1"),
        ("Adult", Workload::AdultSex, Algo::Sfdm2, "SFDM2(sex)"),
        ("Adult", Workload::AdultRace, Algo::Sfdm2, "SFDM2(race)"),
        ("Census", Workload::CensusSex, Algo::Sfdm1, "SFDM1"),
        ("Census", Workload::CensusSex, Algo::Sfdm2, "SFDM2(sex)"),
        ("Census", Workload::CensusAge, Algo::Sfdm2, "SFDM2(age)"),
    ];

    let mut table = Table::new(vec!["panel", "series", "k", "#elem"]);
    for (panel, workload, algo, label) in series {
        let m = workload.num_groups();
        let dataset = workload.build(opts.size, opts.seed).expect("dataset build");
        eprintln!("running {panel}/{label} (n = {}) ...", dataset.len());
        for k in (10..=50).step_by(10) {
            if k < m {
                continue;
            }
            let constraint = FairnessConstraint::equal_representation(k, m).expect("constraint");
            let r = run_averaged(
                &dataset,
                algo,
                &constraint,
                workload.default_epsilon(),
                opts.trials,
            )
            .expect("run");
            table.push_row(vec![
                panel.to_string(),
                label.to_string(),
                k.to_string(),
                r.stored_elements.unwrap().to_string(),
            ]);
        }
    }

    println!("\nFig. 8 (#stored elements vs k):");
    println!("{}", table.render());
    let path = table.write_csv("fig8_space").expect("write CSV");
    println!("wrote {}", path.display());
}
