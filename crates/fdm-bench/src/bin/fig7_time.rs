//! Fig. 7 — efficiency with varying `k` (same eight panels as Fig. 6).
//!
//! "time(s)" follows the paper's §V-A convention: average per-element
//! update time for the streaming algorithms, total runtime for the offline
//! ones, on a log axis in the paper. Expected shape: the streaming
//! algorithms sit orders of magnitude below the offline ones and all curves
//! grow with k.
//!
//! Run: `cargo run --release -p fdm-bench --bin fig7_time [--quick|--full]`

use fdm_bench::cli::Options;
use fdm_bench::experiments::sweep_k;
use fdm_bench::report::{fmt_secs, Table};

fn main() {
    let opts = Options::from_env();
    let cells = sweep_k(&opts).expect("sweep");
    let mut table = Table::new(vec![
        "dataset",
        "k",
        "algo",
        "time(s)",
        "total t(s)",
        "post t(s)",
    ]);
    for (workload, k, r) in &cells {
        table.push_row(vec![
            workload.name(),
            k.to_string(),
            r.algo.to_string(),
            fmt_secs(r.paper_time_s()),
            fmt_secs(r.total_time_s),
            r.post_time_s.map(fmt_secs).unwrap_or_else(|| "-".into()),
        ]);
    }
    println!("\nFig. 7 (time vs k; streaming = avg update/elem, offline = total):");
    println!("{}", table.render());
    let path = table.write_csv("fig7_time").expect("write CSV");
    println!("wrote {}", path.display());
}
