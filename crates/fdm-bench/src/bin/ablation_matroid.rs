//! Ablation A2 — SFDM2's seeded-greedy matroid intersection vs plain
//! Cunningham.
//!
//! SFDM2 adapts Cunningham's algorithm by (a) initializing with the partial
//! solution `S'_µ` instead of `∅` and (b) adding `V1 ∩ V2` elements in
//! decreasing `d(x, S)` order (Algorithm 4; §IV-B argues this is why SFDM2
//! beats FairFlow in practice despite a weaker ratio). The ablation runs
//! both modes — fairness holds either way, diversity should favor the
//! paper's adaptation.
//!
//! Run: `cargo run --release -p fdm-bench --bin ablation_matroid [--quick|--full]`

use fdm_bench::cli::Options;
use fdm_bench::report::Table;
use fdm_bench::workloads::Workload;
use fdm_core::fairness::FairnessConstraint;
use fdm_core::streaming::sfdm2::{AugmentationMode, Sfdm2, Sfdm2Config};
use fdm_datasets::stream::{shuffled_indices, stream_elements};

fn main() {
    let opts = Options::from_env();
    let workloads = [
        Workload::AdultRace,
        Workload::CelebaSexAge,
        Workload::CensusAge,
        Workload::LyricsGenre,
    ];
    let mut table = Table::new(vec![
        "dataset",
        "m",
        "seeded-greedy div",
        "plain Cunningham div",
        "advantage",
    ]);

    for workload in workloads {
        let m = workload.num_groups();
        let k = opts.k.max(m);
        let dataset = workload.build(opts.size, opts.seed).expect("dataset build");
        let constraint = FairnessConstraint::equal_representation(k, m).expect("constraint");
        let bounds = dataset.sampled_distance_bounds(300, 4.0).expect("bounds");
        eprintln!(
            "running {} (n = {}, m = {m}) ...",
            workload.name(),
            dataset.len()
        );

        let mut divs = [0.0f64; 2];
        for (slot, mode) in [
            AugmentationMode::SeededGreedy,
            AugmentationMode::PlainCunningham,
        ]
        .into_iter()
        .enumerate()
        {
            let mut total = 0.0;
            for seed in 0..opts.trials as u64 {
                let mut alg = Sfdm2::with_mode(
                    Sfdm2Config {
                        constraint: constraint.clone(),
                        epsilon: workload.default_epsilon(),
                        bounds,
                        metric: dataset.metric(),
                    },
                    mode,
                )
                .expect("sfdm2");
                let order = shuffled_indices(dataset.len(), seed);
                for e in stream_elements(&dataset, &order) {
                    alg.insert(&e);
                }
                total += alg.finalize().expect("finalize").diversity;
            }
            divs[slot] = total / opts.trials as f64;
        }

        table.push_row(vec![
            workload.name(),
            m.to_string(),
            format!("{:.4}", divs[0]),
            format!("{:.4}", divs[1]),
            format!("{:+.1}%", 100.0 * (divs[0] - divs[1]) / divs[1].max(1e-12)),
        ]);
    }

    println!(
        "\nAblation A2 (SFDM2 matroid-intersection mode, k = {}):",
        opts.k
    );
    println!("{}", table.render());
    let path = table.write_csv("ablation_matroid").expect("write CSV");
    println!("wrote {}", path.display());
}
