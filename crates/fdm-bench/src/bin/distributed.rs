//! Loopback distributed bench: coordinator hot path over K in-process
//! workers.
//!
//! Builds a real cluster in one process — K worker engines behind TCP
//! listeners on 127.0.0.1 and a coordinator engine fronting them — and
//! measures the three coordinator hot paths this crate ships:
//!
//! 1. **Per-element INSERT** — one framed round-trip per element, the
//!    pre-batching baseline.
//! 2. **Batched INSERTB** — the pipelined fan-out: per flush round the
//!    coordinator splits a batch into per-worker sub-sequences and lands
//!    them concurrently, one round-trip per *worker* per round.
//! 3. **MERGE refresh** — the first QUERY anchors every worker cache with
//!    a full snapshot frame; after a 10% insert burst the next QUERY
//!    rides incremental `FDMDELT2` deltas; a repeat QUERY with no
//!    intervening insert is a merged-solution cache hit. Transfer volume
//!    per kind is read off the coordinator's own
//!    `fdm_merge_bytes_total{kind=...}` counters.
//!
//! Run: `cargo run --release -p fdm-bench --bin distributed -- \
//!           --workers 2 --batch 256 --out BENCH_distributed.json`
//!
//! Flags:
//! - `--workers K` — cluster size (default `2`).
//! - `--batch N` — client-side INSERTB chunk size (default `256`).
//! - `--out PATH` — output JSON path (default `BENCH_distributed.json`).
//! - `FDM_BENCH_FAST=1` shrinks the stream for CI smoke runs.

use fdm_core::point::Element;
use fdm_datasets::synthetic::{synthetic_blobs, SyntheticConfig};
use fdm_serve::protocol::{parse_line, Request, StreamSpec};
use fdm_serve::{serve_tcp, Engine, NetOptions, ServeConfig};
use std::net::TcpListener;
use std::sync::Arc;
use std::time::Instant;

const DIM: usize = 16;

fn stream_len() -> usize {
    if std::env::var("FDM_BENCH_FAST").is_ok() {
        1_500
    } else {
        10_000
    }
}

/// One in-process worker engine behind a TCP listener; the accept loop
/// runs until the process exits.
fn start_worker() -> String {
    let engine = Arc::new(Engine::new(ServeConfig::default()).expect("worker engine"));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind worker listener");
    let addr = listener.local_addr().expect("worker listener addr");
    std::thread::spawn(move || serve_tcp(engine, listener, NetOptions::default()));
    addr.to_string()
}

fn coordinator(k: usize) -> Arc<Engine> {
    Arc::new(
        Engine::new(ServeConfig {
            workers: (0..k).map(|_| start_worker()).collect(),
            ..ServeConfig::default()
        })
        .expect("coordinator engine"),
    )
}

/// The synthetic two-group workload plus the OPEN spec tail that admits
/// it. One generator run yields `n` warm-up arrivals and a 10% tail used
/// as the post-anchor burst — the burst is more of the *same* traffic,
/// not a fresh draw with relocated blob centers (which would model a
/// distribution shift and re-admit a new summary's worth of points).
fn workload(n: usize) -> (Vec<Element>, Vec<Element>, String) {
    let data = synthetic_blobs(SyntheticConfig {
        n: n + n / 10,
        m: 2,
        blobs: 10,
        seed: 1,
        dim: DIM,
    })
    .expect("synthetic workload generation cannot fail");
    let bounds = data
        .sampled_distance_bounds(300, 4.0)
        .expect("bounds sampling cannot fail");
    let spec = format!(
        "sfdm2 quotas=8,8 eps=0.1 dmin={} dmax={}",
        bounds.lower, bounds.upper
    );
    let mut all: Vec<Element> = data.iter().collect();
    let burst = all.split_off(n);
    (all, burst, spec)
}

fn open(engine: &Engine, name: &str, spec_tail: &str) -> StreamSpec {
    let line = format!("OPEN {name} {spec_tail}");
    let (parsed_name, spec) = match parse_line(&line).unwrap().unwrap() {
        Request::Open { name, spec } => (name, spec),
        other => panic!("{other:?}"),
    };
    assert_eq!(parsed_name, name);
    engine.open(name, &spec).expect("OPEN");
    spec
}

fn insert_one(engine: &Engine, name: &str, e: &Element) {
    let coords: Vec<String> = e.point.iter().map(f64::to_string).collect();
    let line = format!("INSERT {} {} {}", e.id, e.group, coords.join(" "));
    engine.insert(name, e, &line).expect("INSERT");
}

/// Reads one counter sample (`family{labels} value` or `family value`)
/// off a `/metrics` exposition.
fn counter(metrics: &str, sample: &str) -> f64 {
    metrics
        .lines()
        .find_map(|line| line.strip_prefix(sample))
        .and_then(|rest| rest.trim().parse().ok())
        .unwrap_or(0.0)
}

fn result_object(fields: &[(&str, serde_json::Value)]) -> serde_json::Value {
    let mut map = serde_json::Map::new();
    for (key, value) in fields {
        map.insert((*key).to_string(), value.clone());
    }
    serde_json::Value::Object(map)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut workers = 2usize;
    let mut batch = 256usize;
    let mut out = String::from("BENCH_distributed.json");
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--workers" => {
                i += 1;
                workers = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&k| k >= 1)
                    .expect("--workers requires a positive count");
            }
            "--batch" => {
                i += 1;
                batch = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n >= 1)
                    .expect("--batch requires a positive size");
            }
            "--out" => {
                i += 1;
                out = args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let n = stream_len();
    let (elements, burst, spec_tail) = workload(n);
    let engine = coordinator(workers);
    let mut results = Vec::new();

    // Phase 1: per-element INSERT — one round-trip per element.
    open(&engine, "percall", &spec_tail);
    let start = Instant::now();
    for e in &elements {
        insert_one(&engine, "percall", e);
    }
    let per_element = start.elapsed();
    let per_element_ns = per_element.as_nanos() as f64 / n as f64;
    eprintln!("distributed: per-element insert {per_element_ns:.0} ns/element (K={workers})");
    results.push(result_object(&[
        (
            "id",
            serde_json::json!(format!("distributed/k{workers}/insert/per_element")),
        ),
        ("workers", serde_json::json!(workers as f64)),
        ("elements", serde_json::json!(n as f64)),
        ("per_element_ns", serde_json::json!(per_element_ns)),
        (
            "throughput_elems_per_s",
            serde_json::json!(n as f64 / per_element.as_secs_f64()),
        ),
    ]));

    // Phase 2: batched INSERTB — one round-trip per worker per flush round.
    open(&engine, "batched", &spec_tail);
    let start = Instant::now();
    for chunk in elements.chunks(batch) {
        engine.insert_batch("batched", chunk).expect("INSERTB");
    }
    let batched = start.elapsed();
    let batched_ns = batched.as_nanos() as f64 / n as f64;
    let speedup = per_element_ns / batched_ns;
    eprintln!(
        "distributed: batched insert {batched_ns:.0} ns/element \
         (batch={batch}, {speedup:.1}x vs per-element)"
    );
    results.push(result_object(&[
        (
            "id",
            serde_json::json!(format!("distributed/k{workers}/insert/batched")),
        ),
        ("workers", serde_json::json!(workers as f64)),
        ("batch", serde_json::json!(batch as f64)),
        ("elements", serde_json::json!(n as f64)),
        ("per_element_ns", serde_json::json!(batched_ns)),
        (
            "throughput_elems_per_s",
            serde_json::json!(n as f64 / batched.as_secs_f64()),
        ),
        ("speedup_vs_per_element", serde_json::json!(speedup)),
    ]));

    // Phase 3: MERGE refresh — full anchor, then a 10% burst and the
    // incremental delta, then a pure cache hit.
    let start = Instant::now();
    engine.query("batched", None).expect("cold QUERY");
    let full_query = start.elapsed();
    let metrics = engine.render_metrics();
    let full_bytes = counter(&metrics, "fdm_merge_bytes_total{kind=\"full\"}");
    results.push(result_object(&[
        (
            "id",
            serde_json::json!(format!("distributed/k{workers}/merge/full")),
        ),
        ("workers", serde_json::json!(workers as f64)),
        ("elements", serde_json::json!(n as f64)),
        ("query_ns", serde_json::json!(full_query.as_nanos() as f64)),
        ("bytes", serde_json::json!(full_bytes)),
    ]));

    for chunk in burst.chunks(batch) {
        engine
            .insert_batch("batched", chunk)
            .expect("burst INSERTB");
    }
    let start = Instant::now();
    engine.query("batched", None).expect("delta QUERY");
    let delta_query = start.elapsed();
    let metrics = engine.render_metrics();
    let delta_bytes = counter(&metrics, "fdm_merge_bytes_total{kind=\"delta\"}");
    let full_after = counter(&metrics, "fdm_merge_bytes_total{kind=\"full\"}");
    if full_after > full_bytes {
        eprintln!(
            "distributed: warning — the burst QUERY re-anchored \
             {} extra full bytes instead of riding deltas",
            full_after - full_bytes
        );
    }
    let bytes_ratio = if full_bytes > 0.0 {
        delta_bytes / full_bytes
    } else {
        f64::NAN
    };
    eprintln!(
        "distributed: delta merge {delta_bytes:.0} B vs full {full_bytes:.0} B \
         ({:.1}% of full) after a 10% burst",
        bytes_ratio * 100.0
    );
    results.push(result_object(&[
        (
            "id",
            serde_json::json!(format!("distributed/k{workers}/merge/delta")),
        ),
        ("workers", serde_json::json!(workers as f64)),
        ("burst_elements", serde_json::json!(burst.len() as f64)),
        ("query_ns", serde_json::json!(delta_query.as_nanos() as f64)),
        ("bytes", serde_json::json!(delta_bytes)),
        ("bytes_ratio_vs_full", serde_json::json!(bytes_ratio)),
    ]));

    let start = Instant::now();
    engine.query("batched", None).expect("cached QUERY");
    let cached_query = start.elapsed();
    let metrics = engine.render_metrics();
    results.push(result_object(&[
        (
            "id",
            serde_json::json!(format!("distributed/k{workers}/merge/cached")),
        ),
        ("workers", serde_json::json!(workers as f64)),
        (
            "query_ns",
            serde_json::json!(cached_query.as_nanos() as f64),
        ),
        (
            "cache_hits",
            serde_json::json!(counter(&metrics, "fdm_merge_cache_hits_total")),
        ),
    ]));

    let json = serde_json::to_string_pretty(&results).expect("JSON serialization cannot fail");
    std::fs::write(&out, format!("{json}\n")).expect("cannot write output file");
    eprintln!("distributed: wrote {} entries to {out}", results.len());
}
