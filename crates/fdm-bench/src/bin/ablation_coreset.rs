//! Ablation A3 — one-pass streaming (SFDM1/SFDM2) vs the two-round
//! composable-coreset pipeline from the related work (§II: Indyk et al.,
//! Ceccarello et al.).
//!
//! The coreset pipeline partitions the data into `p` shards, extracts a
//! per-group GMM coreset from each, and runs the offline fair algorithm on
//! the union. It needs a second round and random access within shards;
//! the comparison shows how much quality/space the paper's single-pass
//! algorithms give up (or don't) relative to that stronger model.
//!
//! Run: `cargo run --release -p fdm-bench --bin ablation_coreset [--quick|--full]`

use std::time::Instant;

use fdm_bench::cli::Options;
use fdm_bench::measure::{run_averaged, Algo};
use fdm_bench::report::{fmt_secs, Table};
use fdm_bench::workloads::Workload;
use fdm_core::balance::SwapStrategy;
use fdm_core::coreset::{coreset_dataset, fair_composable_coreset};
use fdm_core::fairness::FairnessConstraint;
use fdm_core::offline::fair_flow::{FairFlow, FairFlowConfig};
use fdm_core::offline::fair_swap::{FairSwap, FairSwapConfig};

fn main() {
    let opts = Options::from_env();
    // Historical partition width is 8; `--shards N` (> 1) overrides it.
    // (1, the CLI default, means "unsharded" elsewhere and would degenerate
    // this ablation to GMM on the whole dataset.)
    let shards = if opts.shards > 1 { opts.shards } else { 8 };
    let workloads = [Workload::AdultSex, Workload::CensusSex, Workload::AdultRace];
    let mut table = Table::new(vec![
        "dataset",
        "m",
        "coreset div",
        "coreset t(s)",
        "coreset size",
        "streaming div",
        "streaming #elem",
    ]);

    for workload in workloads {
        let m = workload.num_groups();
        let k = opts.k.max(m);
        let dataset = workload.build(opts.size, opts.seed).expect("dataset build");
        let constraint = FairnessConstraint::equal_representation(k, m).expect("constraint");
        eprintln!(
            "running {} (n = {}, {shards} shards) ...",
            workload.name(),
            dataset.len()
        );

        // Two-round composable-coreset pipeline, on the same round-robin
        // partition ShardedStream would deal to its shards.
        let start = Instant::now();
        let chunks = dataset.round_robin_shards(shards);
        let cs =
            fair_composable_coreset(&dataset, &chunks, &constraint, opts.seed).expect("coreset");
        let (cds, _) = coreset_dataset(&dataset, &cs).expect("coreset dataset");
        let sol = if m == 2 {
            FairSwap::new(FairSwapConfig {
                constraint: constraint.clone(),
                seed: 0,
                strategy: SwapStrategy::Greedy,
            })
            .expect("fair swap")
            .run(&cds)
            .expect("fair swap run")
        } else {
            FairFlow::new(FairFlowConfig {
                constraint: constraint.clone(),
                seed: 0,
            })
            .expect("fair flow")
            .run(&cds)
            .expect("fair flow run")
        };
        let coreset_time = start.elapsed().as_secs_f64();

        // One-pass streaming counterpart.
        let streaming_algo = if m == 2 { Algo::Sfdm1 } else { Algo::Sfdm2 };
        let stream = run_averaged(
            &dataset,
            streaming_algo,
            &constraint,
            workload.default_epsilon(),
            opts.trials,
        )
        .expect("streaming run");

        table.push_row(vec![
            workload.name(),
            m.to_string(),
            format!("{:.4}", sol.diversity),
            fmt_secs(coreset_time),
            cds.len().to_string(),
            format!("{:.4}", stream.diversity),
            stream.stored_elements.unwrap().to_string(),
        ]);
    }

    println!(
        "\nAblation A3 (composable coreset + offline vs one-pass streaming, k = {}):",
        opts.k
    );
    println!("{}", table.render());
    let path = table.write_csv("ablation_coreset").expect("write CSV");
    println!("wrote {}", path.display());
}
