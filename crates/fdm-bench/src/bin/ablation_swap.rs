//! Ablation A1 — SFDM1's greedy balancing rule vs an arbitrary rule.
//!
//! SFDM1's post-processing inserts the pool element *furthest* from the
//! under-filled side and deletes the over-filled element *closest* to it
//! (GMM-style, Algorithm 2 lines 13/16). This ablation replaces both picks
//! with first-eligible choices: fairness is unaffected (Lemma 2's proof
//! only needs the counts) but diversity should drop — quantifying how much
//! of SFDM1's practical quality the greedy rule buys.
//!
//! Run: `cargo run --release -p fdm-bench --bin ablation_swap [--quick|--full]`

use fdm_bench::cli::Options;
use fdm_bench::report::Table;
use fdm_bench::workloads::Workload;
use fdm_core::balance::SwapStrategy;
use fdm_core::fairness::FairnessConstraint;
use fdm_core::streaming::sfdm1::{Sfdm1, Sfdm1Config};
use fdm_datasets::stream::{shuffled_indices, stream_elements};

fn main() {
    let opts = Options::from_env();
    let workloads = [Workload::AdultSex, Workload::CelebaSex, Workload::CensusSex];
    let mut table = Table::new(vec![
        "dataset",
        "greedy div",
        "arbitrary div",
        "greedy advantage",
    ]);

    for workload in workloads {
        let dataset = workload.build(opts.size, opts.seed).expect("dataset build");
        let constraint = FairnessConstraint::equal_representation(opts.k, 2).expect("constraint");
        let bounds = dataset.sampled_distance_bounds(300, 4.0).expect("bounds");
        eprintln!("running {} (n = {}) ...", workload.name(), dataset.len());

        let mut divs = [0.0f64; 2];
        for (slot, strategy) in [SwapStrategy::Greedy, SwapStrategy::Arbitrary]
            .into_iter()
            .enumerate()
        {
            let mut total = 0.0;
            for seed in 0..opts.trials as u64 {
                let mut alg = Sfdm1::with_strategy(
                    Sfdm1Config {
                        constraint: constraint.clone(),
                        epsilon: workload.default_epsilon(),
                        bounds,
                        metric: dataset.metric(),
                    },
                    strategy,
                )
                .expect("sfdm1");
                let order = shuffled_indices(dataset.len(), seed);
                for e in stream_elements(&dataset, &order) {
                    alg.insert(&e);
                }
                total += alg.finalize().expect("finalize").diversity;
            }
            divs[slot] = total / opts.trials as f64;
        }

        table.push_row(vec![
            workload.name(),
            format!("{:.4}", divs[0]),
            format!("{:.4}", divs[1]),
            format!("{:+.1}%", 100.0 * (divs[0] - divs[1]) / divs[1].max(1e-12)),
        ]);
    }

    println!("\nAblation A1 (SFDM1 balancing rule, k = {}):", opts.k);
    println!("{}", table.render());
    let path = table.write_csv("ablation_swap").expect("write CSV");
    println!("wrote {}", path.display());
}
