//! Convenience driver: runs every experiment binary's logic in sequence
//! (Table II, Figs. 5–11, ablations A1–A3 are separate bins; this driver
//! re-executes them as child processes so their stdout/CSV behavior is
//! identical to running them by hand) and reports a pass/fail summary.
//!
//! Run: `cargo run --release -p fdm-bench --bin run_all [--quick|--full] [--trials N]`

use std::process::Command;

fn main() {
    // Forward our flags verbatim to every child.
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bins = [
        "table2",
        "fig5_epsilon",
        "fig6_quality",
        "fig7_time",
        "fig8_space",
        "fig9_er_pr",
        "fig10_scal_n",
        "fig11_scal_m",
        "ablation_swap",
        "ablation_matroid",
        "ablation_coreset",
    ];

    // Children live next to this binary (same target directory).
    let self_path = std::env::current_exe().expect("current exe");
    let bin_dir = self_path.parent().expect("bin dir").to_path_buf();

    let mut failures = Vec::new();
    for bin in bins {
        let path = bin_dir.join(bin);
        eprintln!("==> {bin} {}", args.join(" "));
        let status = Command::new(&path).args(&args).status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{bin} exited with {s}");
                failures.push(bin);
            }
            Err(e) => {
                eprintln!("{bin} failed to start: {e} (build with `cargo build --release -p fdm-bench` first)");
                failures.push(bin);
            }
        }
    }

    if failures.is_empty() {
        println!(
            "\nall {} experiments completed; CSVs in results/",
            bins.len()
        );
    } else {
        println!("\nfailed: {failures:?}");
        std::process::exit(1);
    }
}
