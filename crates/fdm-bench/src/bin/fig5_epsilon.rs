//! Fig. 5 — effect of the parameter ε on SFDM1/SFDM2 (k = 20).
//!
//! Panels (a)–(c): Adult/CelebA/Census with sex groups (m = 2),
//! ε ∈ {0.05, 0.10, 0.15, 0.20, 0.25}; panel (d): Lyrics (m = 15),
//! ε ∈ {0.02, 0.04, 0.06, 0.08, 0.10} (angular distances ≤ π/2 force the
//! smaller range). Reports diversity, time, and #stored elements — both
//! should fall as ε grows while diversity degrades only mildly.
//!
//! Run: `cargo run --release -p fdm-bench --bin fig5_epsilon [--quick|--full]`

use fdm_bench::cli::Options;
use fdm_bench::measure::{run_averaged, Algo};
use fdm_bench::report::{fmt_secs, Table};
use fdm_bench::workloads::Workload;
use fdm_core::fairness::FairnessConstraint;

fn main() {
    let opts = Options::from_env();
    let panels: Vec<(Workload, Vec<f64>)> = vec![
        (Workload::AdultSex, vec![0.05, 0.10, 0.15, 0.20, 0.25]),
        (Workload::CelebaSex, vec![0.05, 0.10, 0.15, 0.20, 0.25]),
        (Workload::CensusSex, vec![0.05, 0.10, 0.15, 0.20, 0.25]),
        (Workload::LyricsGenre, vec![0.02, 0.04, 0.06, 0.08, 0.10]),
    ];

    let mut table = Table::new(vec![
        "dataset",
        "epsilon",
        "algo",
        "diversity",
        "update t(s)",
        "post t(s)",
        "#elem",
    ]);

    for (workload, epsilons) in panels {
        let m = workload.num_groups();
        let k = opts.k.max(m);
        let dataset = workload.build(opts.size, opts.seed).expect("dataset build");
        let constraint = FairnessConstraint::equal_representation(k, m).expect("constraint");
        eprintln!("running {} (n = {}) ...", workload.name(), dataset.len());
        for &eps in &epsilons {
            let algos: &[Algo] = if m == 2 {
                &[Algo::Sfdm1, Algo::Sfdm2]
            } else {
                &[Algo::Sfdm2]
            };
            for &algo in algos {
                let r = run_averaged(&dataset, algo, &constraint, eps, opts.trials).expect("run");
                table.push_row(vec![
                    workload.name(),
                    format!("{eps:.2}"),
                    r.algo.to_string(),
                    format!("{:.4}", r.diversity),
                    fmt_secs(r.update_time_s.unwrap()),
                    fmt_secs(r.post_time_s.unwrap()),
                    r.stored_elements.unwrap().to_string(),
                ]);
            }
        }
    }

    println!("\nFig. 5 (k = {}):", opts.k);
    println!("{}", table.render());
    let path = table.write_csv("fig5_epsilon").expect("write CSV");
    println!("wrote {}", path.display());
}
