//! Table II — overview of all algorithms on the four real datasets
//! (k = 20, equal representation).
//!
//! Columns mirror the paper: GMM's unconstrained diversity as the quality
//! reference, then (diversity, time, #stored elements where applicable) for
//! FairSwap, FairFlow, SFDM1, and SFDM2. FairSwap/SFDM1 only apply when
//! m = 2; FairGMM is omitted exactly as in the paper (it cannot scale to
//! k = 20). Streaming "time" is average per-element update time; offline
//! "time" is total runtime (§V-A convention).
//!
//! Run: `cargo run --release -p fdm-bench --bin table2 [--quick|--full] [--trials N]`
//!
//! `--algorithm sliding --window N` benchmarks the sliding-window scenario
//! alongside the others: three extra columns (diversity, update time,
//! stored elements) measured over the most recent `N`-element window of
//! each permuted stream.
//!
//! Checkpointing: `--snapshot-every N` writes each streaming cell's summary
//! to `results/snapshots/table2-<algo>-<dataset>.snap` every N arrivals;
//! `--restore-from PATH` resumes from a snapshot (skipping the already-
//! processed stream prefix). A checkpoint named by this binary's own
//! convention resumes exactly its cell (the others run fresh); any other
//! snapshot is offered to every streaming cell, and an incompatible one
//! aborts with a typed error rather than feeding garbage. Use `--trials 1`
//! with persistence flags — the trials share one checkpoint path.

use fdm_bench::cli::Options;
use fdm_bench::measure::{
    run_averaged, run_averaged_sharded_persist, run_averaged_windowed, Algo, PersistOpts,
};
use fdm_bench::report::{fmt_secs, results_dir, Table};
use fdm_bench::workloads::Workload;
use fdm_core::fairness::FairnessConstraint;

fn persist_opts(opts: &Options, algo: Algo, dataset: &str) -> PersistOpts {
    // "CelebA (Sex+Age)" → "celeba-sex-age": keep checkpoint names shell-
    // and filesystem-friendly.
    let slug: String = dataset
        .to_lowercase()
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect::<String>()
        .split('-')
        .filter(|s| !s.is_empty())
        .collect::<Vec<_>>()
        .join("-");
    let cell_file = format!("table2-{}-{slug}.snap", algo.name().to_lowercase());
    // A checkpoint written by this binary names its cell; resume only that
    // cell and run the others fresh. A custom-named snapshot is handed to
    // every streaming cell — an incompatible one aborts with the typed
    // `IncompatibleSnapshot` error rather than feeding garbage.
    let restore_from = opts.restore_from.as_ref().and_then(|p| {
        let path = std::path::PathBuf::from(p);
        match path.file_name().and_then(|f| f.to_str()) {
            Some(name) if name.starts_with("table2-") => (name == cell_file).then_some(path),
            _ => Some(path),
        }
    });
    PersistOpts {
        snapshot_every: opts.snapshot_every,
        snapshot_path: opts
            .snapshot_every
            .map(|_| results_dir().join("snapshots").join(&cell_file)),
        snapshot_format: opts.snapshot_format,
        restore_from,
        restore_snapshot: None,
    }
}

fn main() {
    let opts = Options::from_env();
    let mut table = Table::new(vec![
        "dataset",
        "m",
        "GMM div",
        "FairSwap div",
        "FairSwap t(s)",
        "FairFlow div",
        "FairFlow t(s)",
        "SFDM1 div",
        "SFDM1 t(s)",
        "SFDM1 #elem",
        "SFDM2 div",
        "SFDM2 t(s)",
        "SFDM2 #elem",
        "Sliding div",
        "Sliding t(s)",
        "Sliding #elem",
    ]);

    for workload in Workload::table2_rows() {
        let m = workload.num_groups();
        let k = opts.k.max(m); // at least one element per group
        let dataset = workload.build(opts.size, opts.seed).expect("dataset build");
        let constraint = FairnessConstraint::equal_representation(k, m).expect("constraint");
        let epsilon = workload.default_epsilon();
        eprintln!(
            "running {} (n = {}, m = {m}, k = {k}) ...",
            workload.name(),
            dataset.len()
        );

        // A zero-arrival stream has no diversity to report — the same edge
        // the serving layer types as `ERR empty stream` on QUERY. It is a
        // property of this row's cells, not a reason to abort the table.
        if dataset.is_empty() {
            eprintln!("  empty stream (0 arrivals): reporting `empty` cells");
            let mut row = vec![workload.name(), m.to_string()];
            row.extend(std::iter::repeat_n("empty".to_string(), 14));
            table.push_row(row);
            continue;
        }

        let gmm = run_averaged(&dataset, Algo::Gmm, &constraint, epsilon, 1).expect("GMM run");

        let (swap_div, swap_t) = if m == 2 {
            let r = run_averaged(&dataset, Algo::FairSwap, &constraint, epsilon, opts.trials)
                .expect("FairSwap run");
            (format!("{:.4}", r.diversity), fmt_secs(r.total_time_s))
        } else {
            ("-".into(), "-".into())
        };

        let flow = run_averaged(&dataset, Algo::FairFlow, &constraint, epsilon, opts.trials)
            .expect("FairFlow run");

        let (s1_div, s1_t, s1_e) = if m == 2 {
            let r = run_averaged_sharded_persist(
                &dataset,
                Algo::Sfdm1,
                &constraint,
                epsilon,
                opts.trials,
                opts.shards,
                &persist_opts(&opts, Algo::Sfdm1, &workload.name()),
            )
            .expect("SFDM1 run");
            (
                format!("{:.4}", r.diversity),
                fmt_secs(r.paper_time_s()),
                r.stored_elements.unwrap().to_string(),
            )
        } else {
            ("-".into(), "-".into(), "-".into())
        };

        let (sl_div, sl_t, sl_e) = if opts.algorithm.as_deref() == Some("sliding") {
            match run_averaged_windowed(
                &dataset,
                Algo::Sliding,
                &constraint,
                epsilon,
                opts.trials,
                opts.shards,
                opts.window,
                &persist_opts(&opts, Algo::Sliding, &workload.name()),
            ) {
                Ok(r) => (
                    format!("{:.4}", r.diversity),
                    fmt_secs(r.paper_time_s()),
                    r.stored_elements.unwrap().to_string(),
                ),
                // A window too small for a rare group's quota has no fair
                // answer — a real property of the scenario, not a crash.
                Err(fdm_core::FdmError::NoFeasibleCandidate) => {
                    eprintln!(
                        "  sliding: no feasible window of {} elements (rare group vs quota)",
                        opts.window
                    );
                    ("infeasible".into(), "-".into(), "-".into())
                }
                Err(e) => panic!("Sliding run: {e}"),
            }
        } else {
            ("-".into(), "-".into(), "-".into())
        };

        let s2 = run_averaged_sharded_persist(
            &dataset,
            Algo::Sfdm2,
            &constraint,
            epsilon,
            opts.trials,
            opts.shards,
            &persist_opts(&opts, Algo::Sfdm2, &workload.name()),
        )
        .expect("SFDM2 run");

        table.push_row(vec![
            workload.name(),
            m.to_string(),
            format!("{:.4}", gmm.diversity),
            swap_div,
            swap_t,
            format!("{:.4}", flow.diversity),
            fmt_secs(flow.total_time_s),
            s1_div,
            s1_t,
            s1_e,
            format!("{:.4}", s2.diversity),
            fmt_secs(s2.paper_time_s()),
            s2.stored_elements.unwrap().to_string(),
            sl_div,
            sl_t,
            sl_e,
        ]);
    }

    println!(
        "\nTable II (k = {}, ER quotas; streaming time = avg update/elem):",
        opts.k
    );
    println!("{}", table.render());
    let path = table.write_csv("table2").expect("write CSV");
    println!("wrote {}", path.display());
}
