//! Table printing and CSV output for the experiment binaries.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// A rectangular result table: named columns, string cells.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells (each the same length as `headers`).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header length.
    pub fn push_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Renders a fixed-width text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (cell, w) in cells.iter().zip(widths) {
                line.push_str(&format!("{cell:<width$}  ", width = w));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        out.push_str(&"-".repeat(total.min(160)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Writes the table as CSV to `results/<name>.csv` (creating the
    /// directory) and returns the path. A machine-readable JSON twin
    /// (`results/<name>.json`, an array of header-keyed objects) is written
    /// alongside for downstream tooling.
    pub fn write_csv(&self, name: &str) -> std::io::Result<PathBuf> {
        let dir = results_dir();
        fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{name}.csv"));
        let mut file = fs::File::create(&path)?;
        writeln!(file, "{}", csv_line(&self.headers))?;
        for row in &self.rows {
            writeln!(file, "{}", csv_line(row))?;
        }
        let json_path = dir.join(format!("{name}.json"));
        fs::write(&json_path, self.to_json())?;
        Ok(path)
    }

    /// Serializes the table as a JSON array of objects keyed by header.
    /// Numeric-looking cells are emitted as numbers, everything else as
    /// strings.
    pub fn to_json(&self) -> String {
        let rows: Vec<serde_json::Value> = self
            .rows
            .iter()
            .map(|row| {
                let map: serde_json::Map<String, serde_json::Value> = self
                    .headers
                    .iter()
                    .zip(row)
                    .map(|(h, cell)| {
                        let value = match cell.parse::<f64>() {
                            Ok(v) if v.is_finite() => serde_json::json!(v),
                            _ => serde_json::json!(cell),
                        };
                        (h.clone(), value)
                    })
                    .collect();
                serde_json::Value::Object(map)
            })
            .collect();
        serde_json::to_string_pretty(&rows).expect("JSON serialization cannot fail")
    }
}

fn csv_line(cells: &[String]) -> String {
    cells
        .iter()
        .map(|c| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.clone()
            }
        })
        .collect::<Vec<_>>()
        .join(",")
}

/// The `results/` directory at the workspace root (falls back to the
/// current directory when the workspace root cannot be located).
pub fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/fdm-bench → workspace root is two up.
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest
        .ancestors()
        .nth(2)
        .map(|p| p.join("results"))
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Formats seconds in engineering style (`1.23e-6` for tiny values,
/// `12.345` otherwise).
pub fn fmt_secs(s: f64) -> String {
    if s > 0.0 && s < 1e-3 {
        format!("{s:.3e}")
    } else {
        format!("{s:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new(vec!["dataset", "div"]);
        t.push_row(vec!["Adult (Sex)", "4.1710"]);
        t.push_row(vec!["Census", "31.0"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].starts_with("dataset"));
        assert!(lines[1].starts_with("---"));
        assert_eq!(lines.len(), 4);
        assert!(lines[2].contains("Adult (Sex)"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.push_row(vec!["only one"]);
    }

    #[test]
    fn csv_escaping() {
        assert_eq!(csv_line(&["a,b".into(), "plain".into()]), "\"a,b\",plain");
        assert_eq!(csv_line(&["say \"hi\"".into()]), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn fmt_secs_switches_notation() {
        assert_eq!(fmt_secs(0.5), "0.5000");
        assert!(fmt_secs(2e-6).contains('e'));
        assert_eq!(fmt_secs(0.0), "0.0000");
    }

    #[test]
    fn csv_round_trip_on_disk() {
        let mut t = Table::new(vec!["x", "y"]);
        t.push_row(vec!["1", "2"]);
        let path = t.write_csv("test_report_roundtrip").unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "x,y\n1,2\n");
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(path.with_extension("json")).unwrap();
    }

    #[test]
    fn json_types_numbers_and_strings() {
        let mut t = Table::new(vec!["algo", "div", "time"]);
        t.push_row(vec!["SFDM2", "3.25", "1.2e-6"]);
        t.push_row(vec!["FairFlow", "-", "0.5"]);
        let parsed: serde_json::Value = serde_json::from_str(&t.to_json()).unwrap();
        let rows = parsed.as_array().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0]["algo"], "SFDM2");
        assert_eq!(rows[0]["div"], 3.25);
        assert_eq!(rows[0]["time"], 1.2e-6);
        assert_eq!(rows[1]["div"], "-");
    }
}
