//! Algorithm runners with the paper's performance measures (§V-A).
//!
//! * **quality** — `div(S)` of the returned solution;
//! * **efficiency** — for streaming algorithms the *average update time*
//!   (wall-clock insert cost per arrival element; post-processing reported
//!   separately), for offline algorithms the total solution time — exactly
//!   the convention behind Table II's "time(s)" column;
//! * **space** — number of distinct stored elements (streaming only; the
//!   offline baselines keep the whole dataset, i.e. `n`).

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use fdm_core::balance::SwapStrategy;
use fdm_core::dataset::Dataset;
use fdm_core::diversity::diversity;
use fdm_core::error::Result;
use fdm_core::fairness::FairnessConstraint;
use fdm_core::offline::fair_flow::{FairFlow, FairFlowConfig};
use fdm_core::offline::fair_gmm::{FairGmm, FairGmmConfig};
use fdm_core::offline::fair_swap::{FairSwap, FairSwapConfig};
use fdm_core::offline::gmm::gmm;
use fdm_core::persist::{Snapshot, SnapshotFormat};
use fdm_core::point::Element;
use fdm_core::streaming::summary::{self, DynSummary, SummarySpec};
use fdm_datasets::stream::{shuffled_indices, stream_elements};

/// Batch size for the sharded ingestion path: large enough to amortize the
/// per-batch fan-out, small enough to keep shard sub-batches cache-warm.
const SHARD_BATCH: usize = 512;

/// The algorithms of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    /// Gonzalez greedy (unconstrained reference).
    Gmm,
    /// Streaming unconstrained baseline (Algorithm 1).
    StreamingDm,
    /// Offline FairSwap (m = 2).
    FairSwap,
    /// Offline FairFlow (any m).
    FairFlow,
    /// Offline FairGMM (small k, m).
    FairGmm,
    /// Streaming SFDM1 (m = 2).
    Sfdm1,
    /// Streaming SFDM2 (any m).
    Sfdm2,
    /// Sliding-window wrapper over SFDM2 (checkpointed restart).
    Sliding,
}

impl Algo {
    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            Algo::Gmm => "GMM",
            Algo::StreamingDm => "SDM",
            Algo::FairSwap => "FairSwap",
            Algo::FairFlow => "FairFlow",
            Algo::FairGmm => "FairGMM",
            Algo::Sfdm1 => "SFDM1",
            Algo::Sfdm2 => "SFDM2",
            Algo::Sliding => "Sliding",
        }
    }

    /// Whether the algorithm processes the data as a one-pass stream.
    pub fn is_streaming(&self) -> bool {
        matches!(
            self,
            Algo::StreamingDm | Algo::Sfdm1 | Algo::Sfdm2 | Algo::Sliding
        )
    }

    /// The summary registry tag for the streaming algorithms.
    fn registry_tag(&self) -> Option<&'static str> {
        match self {
            Algo::StreamingDm => Some("unconstrained"),
            Algo::Sfdm1 => Some("sfdm1"),
            Algo::Sfdm2 => Some("sfdm2"),
            Algo::Sliding => Some("sliding"),
            _ => None,
        }
    }
}

/// One measured run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Algorithm name.
    pub algo: &'static str,
    /// `div(S)` of the solution.
    pub diversity: f64,
    /// Total wall-clock time (stream pass + post-processing, or offline
    /// runtime), seconds.
    pub total_time_s: f64,
    /// Streaming only: average insert time per element, seconds.
    pub update_time_s: Option<f64>,
    /// Streaming only: post-processing (finalize) time, seconds.
    pub post_time_s: Option<f64>,
    /// Streaming only: distinct stored elements.
    pub stored_elements: Option<usize>,
}

impl RunResult {
    /// The paper's Table II "time(s)" value: per-element update time for
    /// streaming algorithms, total runtime for offline ones.
    pub fn paper_time_s(&self) -> f64 {
        self.update_time_s.unwrap_or(self.total_time_s)
    }
}

/// Snapshot/restore options for the streaming runs (the `--snapshot-every`
/// / `--restore-from` / `--snapshot-format` CLI flags land here).
#[derive(Debug, Clone, Default)]
pub struct PersistOpts {
    /// Checkpoint the summary every N ingested arrivals.
    pub snapshot_every: Option<usize>,
    /// Where periodic checkpoints are written (required when
    /// `snapshot_every` is set; overwritten in place, latest wins).
    pub snapshot_path: Option<PathBuf>,
    /// Encoding for written checkpoints (restore sniffs the format, so
    /// either reads back).
    pub snapshot_format: SnapshotFormat,
    /// Resume from this snapshot: the summary is restored (after a
    /// compatibility check against the run's own configuration — a
    /// mismatching snapshot is a typed error, never garbage distances) and
    /// the already-processed prefix of the permuted stream is skipped, so
    /// the resumed run finishes bit-identically to an uninterrupted one.
    pub restore_from: Option<PathBuf>,
    /// Pre-parsed resume snapshot. [`run_averaged_sharded_persist`] fills
    /// this by reading `restore_from` **once** before its repetition loop,
    /// so per-trial runs never re-read and re-parse the file; callers can
    /// also hand a snapshot they already hold. Takes precedence over
    /// `restore_from`.
    pub restore_snapshot: Option<Arc<Snapshot>>,
}

/// Times `Snapshot::read_from_file` was invoked by this module — the
/// regression counter for the "restore hoisted out of the repetition
/// loop" guarantee (see `snapshot_reads_happen_once_per_resume` in the
/// tests).
static SNAPSHOT_FILE_READS: AtomicUsize = AtomicUsize::new(0);

/// Current value of the snapshot-file read counter.
pub fn snapshot_file_reads() -> usize {
    SNAPSHOT_FILE_READS.load(Ordering::SeqCst)
}

/// Reads and parses a resume snapshot, counting the read.
fn read_restore_snapshot(path: &PathBuf) -> Result<Arc<Snapshot>> {
    SNAPSHOT_FILE_READS.fetch_add(1, Ordering::SeqCst);
    Ok(Arc::new(Snapshot::read_from_file(path)?))
}

/// The snapshot a run should resume from, if any: the pre-parsed one when
/// present, else one (counted) file read.
fn resume_snapshot(persist: &PersistOpts) -> Result<Option<Arc<Snapshot>>> {
    match (&persist.restore_snapshot, &persist.restore_from) {
        (Some(snapshot), _) => Ok(Some(snapshot.clone())),
        (None, Some(path)) => read_restore_snapshot(path).map(Some),
        (None, None) => Ok(None),
    }
}

/// Parameters shared by all runs of one experiment cell.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Fairness constraint (`total()` = k).
    pub constraint: FairnessConstraint,
    /// Guess-ladder accuracy for the streaming algorithms.
    pub epsilon: f64,
    /// Seed: selects the stream permutation and the offline algorithms'
    /// start elements.
    pub seed: u64,
    /// Shard count for the streaming algorithms: 1 runs them unsharded
    /// (bit-identical to the plain algorithm); K > 1 routes the stream
    /// through `ShardedStream` with chunked batch ingestion.
    pub shards: usize,
    /// Sliding-window size for [`Algo::Sliding`]; ignored (must be 0) for
    /// every other algorithm.
    pub window: usize,
    /// Snapshot/restore options for the streaming algorithms (checkpoint
    /// cost is part of the measured update time).
    pub persist: PersistOpts,
}

/// Runs one algorithm once and measures it.
pub fn run_algorithm(dataset: &Dataset, algo: Algo, config: &RunConfig) -> Result<RunResult> {
    let k = config.constraint.total();
    match algo {
        Algo::Gmm => {
            let start = Instant::now();
            let sol = gmm(dataset, k, config.seed);
            let div = diversity(dataset, &sol);
            Ok(RunResult {
                algo: algo.name(),
                diversity: div,
                total_time_s: start.elapsed().as_secs_f64(),
                update_time_s: None,
                post_time_s: None,
                stored_elements: None,
            })
        }
        Algo::FairSwap => {
            let alg = FairSwap::new(FairSwapConfig {
                constraint: config.constraint.clone(),
                seed: config.seed,
                strategy: SwapStrategy::Greedy,
            })?;
            let start = Instant::now();
            let sol = alg.run(dataset)?;
            Ok(RunResult {
                algo: algo.name(),
                diversity: sol.diversity,
                total_time_s: start.elapsed().as_secs_f64(),
                update_time_s: None,
                post_time_s: None,
                stored_elements: None,
            })
        }
        Algo::FairFlow => {
            let alg = FairFlow::new(FairFlowConfig {
                constraint: config.constraint.clone(),
                seed: config.seed,
            })?;
            let start = Instant::now();
            let sol = alg.run(dataset)?;
            Ok(RunResult {
                algo: algo.name(),
                diversity: sol.diversity,
                total_time_s: start.elapsed().as_secs_f64(),
                update_time_s: None,
                post_time_s: None,
                stored_elements: None,
            })
        }
        Algo::FairGmm => {
            let alg = FairGmm::new(FairGmmConfig::new(config.constraint.clone(), config.seed))?;
            let start = Instant::now();
            let sol = alg.run(dataset)?;
            Ok(RunResult {
                algo: algo.name(),
                diversity: sol.diversity,
                total_time_s: start.elapsed().as_secs_f64(),
                update_time_s: None,
                post_time_s: None,
                stored_elements: None,
            })
        }
        Algo::StreamingDm | Algo::Sfdm1 | Algo::Sfdm2 | Algo::Sliding => {
            run_streaming(algo, dataset, config)
        }
    }
}

/// The registry spec one streaming cell implies: every streaming algorithm
/// goes through this one translation, so adding an algorithm to the bench
/// is adding an [`Algo`] variant and its registry tag — no per-algorithm
/// runner.
fn summary_spec(algo: Algo, dataset: &Dataset, config: &RunConfig) -> Result<SummarySpec> {
    let tag = algo
        .registry_tag()
        .expect("summary_spec is only called for streaming algorithms");
    let bounds = dataset.sampled_distance_bounds(300, 4.0)?;
    let quotas = if tag == "unconstrained" {
        Vec::new()
    } else {
        config.constraint.quotas().to_vec()
    };
    Ok(SummarySpec {
        algorithm: tag.to_string(),
        epsilon: config.epsilon,
        bounds,
        metric: dataset.metric(),
        quotas,
        k: config.constraint.total(),
        shards: config.shards.max(1),
        window: if tag == "sliding" { config.window } else { 0 },
    })
}

/// Streams the permuted dataset through any registry-built summary and
/// measures it. `shards == 1` inserts element-by-element (the unsharded
/// reference path, bit-identical to the plain algorithm); `shards > 1`
/// pre-materializes the stream and ingests fixed-size batches so the shard
/// fan-out can run concurrently on the persistent pool.
fn run_streaming(algo: Algo, dataset: &Dataset, run: &RunConfig) -> Result<RunResult> {
    let spec = summary_spec(algo, dataset, run)?;
    let shards = spec.shards;
    let mut alg: Box<dyn DynSummary> = match resume_snapshot(&run.persist)? {
        Some(snapshot) => {
            // Check the snapshot against this run's own configuration
            // *before* trusting its state: a wrong-algorithm/ε/metric/
            // quota snapshot must be a typed error, not garbage distances.
            let mut implied = summary::spec_params(&spec)?;
            // Pre-registry builds checkpointed every streaming run through
            // the sharded wrapper, so a --shards 1 checkpoint carries tag
            // `sharded:<algo>` with shards = 1 — bit-identical in behavior
            // to the unsharded algorithm (pinned by tests/sharded.rs).
            // Accept it by adopting the wrapper identity for the check;
            // `summary::restore` then rebuilds the K = 1 wrapper.
            if implied.shards == 1
                && snapshot.params.shards == 1
                && snapshot.params.algorithm == format!("sharded:{}", implied.algorithm)
            {
                implied.algorithm = snapshot.params.algorithm.clone();
            }
            snapshot.params.ensure_compatible(&implied)?;
            // A fresh spec hasn't seen data, so its dimension is the
            // 0 wildcard and `ensure_compatible` cannot vet it — but the
            // dataset's dimensionality is known here, and a mismatch would
            // panic in the arena on the first suffix element.
            if snapshot.params.dim != 0 && snapshot.params.dim != dataset.dim() {
                return Err(fdm_core::FdmError::IncompatibleSnapshot {
                    detail: format!(
                        "snapshot holds {}-dimensional points, dataset is {}-dimensional",
                        snapshot.params.dim,
                        dataset.dim()
                    ),
                });
            }
            summary::restore(&snapshot)?
        }
        None => summary::build(&spec)?,
    };
    let order = shuffled_indices(dataset.len(), run.seed);
    // Pre-materialize the permuted stream for *both* paths so the measured
    // update time covers only algorithm work — comparisons across shard
    // counts stay apples-to-apples.
    let elements: Vec<Element> = stream_elements(dataset, &order).collect();
    // Resume semantics: the restored summary already processed a prefix of
    // this permutation; only the remaining suffix is ingested.
    let skip = alg.processed().min(elements.len());
    let suffix = &elements[skip..];
    if let Some(path) = &run.persist.snapshot_path {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).map_err(|e| fdm_core::FdmError::SnapshotIo {
                detail: format!("create snapshot dir {}: {e}", dir.display()),
            })?;
        }
    }
    let mut checkpointer = Checkpointer::new(&run.persist)?;
    let start = Instant::now();
    if shards == 1 {
        for e in suffix {
            alg.insert(e);
            checkpointer.after_ingest(alg.as_ref(), 1)?;
        }
    } else {
        for chunk in suffix.chunks(SHARD_BATCH) {
            alg.insert_batch(chunk);
            checkpointer.after_ingest(alg.as_ref(), chunk.len())?;
        }
    }
    let stream_time = start.elapsed().as_secs_f64();
    let post_start = Instant::now();
    let sol = alg.finalize()?;
    let post_time = post_start.elapsed().as_secs_f64();
    Ok(RunResult {
        algo: algo.name(),
        diversity: sol.diversity,
        total_time_s: stream_time + post_time,
        update_time_s: Some(stream_time / suffix.len().max(1) as f64),
        post_time_s: Some(post_time),
        stored_elements: Some(alg.stored_elements()),
    })
}

/// Periodic checkpoint writer for the streaming runs.
struct Checkpointer<'a> {
    every: Option<usize>,
    path: Option<&'a PathBuf>,
    format: SnapshotFormat,
    since_snapshot: usize,
}

impl<'a> Checkpointer<'a> {
    fn new(persist: &'a PersistOpts) -> Result<Self> {
        if persist.snapshot_every.is_some() && persist.snapshot_path.is_none() {
            return Err(fdm_core::FdmError::SnapshotIo {
                detail: "snapshot_every set without a snapshot_path".to_string(),
            });
        }
        Ok(Checkpointer {
            every: persist.snapshot_every,
            path: persist.snapshot_path.as_ref(),
            format: persist.snapshot_format,
            since_snapshot: 0,
        })
    }

    fn after_ingest(&mut self, alg: &dyn DynSummary, ingested: usize) -> Result<()> {
        let Some(every) = self.every else {
            return Ok(());
        };
        self.since_snapshot += ingested;
        if self.since_snapshot >= every {
            let path = self.path.expect("validated in Checkpointer::new");
            alg.snapshot().write_to_file_format(path, self.format)?;
            self.since_snapshot = 0;
        }
        Ok(())
    }
}

/// Runs an algorithm over several stream permutations and averages every
/// measure — the paper runs "each experiment 10 times with different
/// permutations of the same dataset".
pub fn run_averaged(
    dataset: &Dataset,
    algo: Algo,
    constraint: &FairnessConstraint,
    epsilon: f64,
    trials: usize,
) -> Result<RunResult> {
    run_averaged_sharded(dataset, algo, constraint, epsilon, trials, 1)
}

/// [`run_averaged`] with an explicit shard count for the streaming
/// algorithms (the `--shards` CLI flag lands here; offline algorithms
/// ignore it).
pub fn run_averaged_sharded(
    dataset: &Dataset,
    algo: Algo,
    constraint: &FairnessConstraint,
    epsilon: f64,
    trials: usize,
    shards: usize,
) -> Result<RunResult> {
    run_averaged_sharded_persist(
        dataset,
        algo,
        constraint,
        epsilon,
        trials,
        shards,
        &PersistOpts::default(),
    )
}

/// [`run_averaged_sharded_persist`] with a sliding-window size for
/// [`Algo::Sliding`] (the `--algorithm sliding --window N` CLI flags land
/// here; every other algorithm requires `window == 0`).
#[allow(clippy::too_many_arguments)]
pub fn run_averaged_windowed(
    dataset: &Dataset,
    algo: Algo,
    constraint: &FairnessConstraint,
    epsilon: f64,
    trials: usize,
    shards: usize,
    window: usize,
    persist: &PersistOpts,
) -> Result<RunResult> {
    run_averaged_inner(
        dataset, algo, constraint, epsilon, trials, shards, window, persist,
    )
}

/// [`run_averaged_sharded`] with snapshot/restore options (the
/// `--snapshot-every` / `--restore-from` CLI flags land here; offline
/// algorithms ignore them). Restoring requires `trials == 1`: each trial
/// streams a different permutation, and a checkpoint from one permutation
/// cannot resume another.
pub fn run_averaged_sharded_persist(
    dataset: &Dataset,
    algo: Algo,
    constraint: &FairnessConstraint,
    epsilon: f64,
    trials: usize,
    shards: usize,
    persist: &PersistOpts,
) -> Result<RunResult> {
    run_averaged_inner(
        dataset, algo, constraint, epsilon, trials, shards, 0, persist,
    )
}

#[allow(clippy::too_many_arguments)]
fn run_averaged_inner(
    dataset: &Dataset,
    algo: Algo,
    constraint: &FairnessConstraint,
    epsilon: f64,
    trials: usize,
    shards: usize,
    window: usize,
    persist: &PersistOpts,
) -> Result<RunResult> {
    assert!(trials > 0);
    if (persist.restore_from.is_some() || persist.restore_snapshot.is_some()) && trials > 1 {
        // Silently averaging resumed-from-the-wrong-permutation runs would
        // be wrong in a way no later check catches; refuse up front.
        return Err(fdm_core::FdmError::IncompatibleSnapshot {
            detail: format!(
                "restore-from requires a single trial (got {trials}): each trial streams a \
                 different permutation, so a checkpoint of one cannot resume another"
            ),
        });
    }
    // Hoist the resume-snapshot read out of the repetition loop: the file
    // is read and parsed exactly once here, and every repetition below
    // resumes from the pre-parsed document.
    let mut persist = persist.clone();
    if persist.restore_snapshot.is_none() {
        if let Some(path) = &persist.restore_from {
            persist.restore_snapshot = Some(read_restore_snapshot(path)?);
        }
    }
    let mut acc: Option<RunResult> = None;
    for seed in 0..trials as u64 {
        let r = run_algorithm(
            dataset,
            algo,
            &RunConfig {
                constraint: constraint.clone(),
                epsilon,
                seed,
                shards,
                window,
                persist: persist.clone(),
            },
        )?;
        acc = Some(match acc {
            None => r,
            Some(a) => RunResult {
                algo: a.algo,
                diversity: a.diversity + r.diversity,
                total_time_s: a.total_time_s + r.total_time_s,
                update_time_s: match (a.update_time_s, r.update_time_s) {
                    (Some(x), Some(y)) => Some(x + y),
                    _ => None,
                },
                post_time_s: match (a.post_time_s, r.post_time_s) {
                    (Some(x), Some(y)) => Some(x + y),
                    _ => None,
                },
                stored_elements: match (a.stored_elements, r.stored_elements) {
                    (Some(x), Some(y)) => Some(x + y),
                    _ => None,
                },
            },
        });
    }
    let mut a = acc.expect("trials > 0");
    let t = trials as f64;
    a.diversity /= t;
    a.total_time_s /= t;
    a.update_time_s = a.update_time_s.map(|x| x / t);
    a.post_time_s = a.post_time_s.map(|x| x / t);
    a.stored_elements = a.stored_elements.map(|x| x / trials);
    Ok(a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdm_core::metric::Metric;
    use fdm_datasets::synthetic::{synthetic_blobs, SyntheticConfig};

    fn dataset() -> Dataset {
        synthetic_blobs(SyntheticConfig {
            n: 1_500,
            m: 2,
            blobs: 10,
            seed: 3,
            dim: 2,
        })
        .unwrap()
    }

    #[test]
    fn all_algorithms_run_and_report() {
        let d = dataset();
        let c = FairnessConstraint::new(vec![3, 3]).unwrap();
        for algo in [
            Algo::Gmm,
            Algo::StreamingDm,
            Algo::FairSwap,
            Algo::FairFlow,
            Algo::FairGmm,
            Algo::Sfdm1,
            Algo::Sfdm2,
        ] {
            let r = run_algorithm(
                &d,
                algo,
                &RunConfig {
                    constraint: c.clone(),
                    epsilon: 0.1,
                    seed: 0,
                    shards: 1,
                    window: 0,
                    persist: Default::default(),
                },
            )
            .unwrap_or_else(|e| panic!("{algo:?} failed: {e}"));
            assert!(r.diversity > 0.0, "{algo:?} produced zero diversity");
            assert!(r.total_time_s >= 0.0);
            assert_eq!(r.update_time_s.is_some(), algo.is_streaming());
            assert_eq!(r.stored_elements.is_some(), algo.is_streaming());
        }
    }

    #[test]
    fn paper_time_uses_update_time_for_streaming() {
        let d = dataset();
        let c = FairnessConstraint::new(vec![3, 3]).unwrap();
        let r = run_algorithm(
            &d,
            Algo::Sfdm1,
            &RunConfig {
                constraint: c.clone(),
                epsilon: 0.1,
                seed: 0,
                shards: 1,
                window: 0,
                persist: Default::default(),
            },
        )
        .unwrap();
        assert_eq!(r.paper_time_s(), r.update_time_s.unwrap());
        let r = run_algorithm(
            &d,
            Algo::FairSwap,
            &RunConfig {
                constraint: c,
                epsilon: 0.1,
                seed: 0,
                shards: 1,
                window: 0,
                persist: Default::default(),
            },
        )
        .unwrap();
        assert_eq!(r.paper_time_s(), r.total_time_s);
    }

    #[test]
    fn averaging_runs_multiple_permutations() {
        let d = dataset();
        let c = FairnessConstraint::new(vec![2, 2]).unwrap();
        let r = run_averaged(&d, Algo::Sfdm2, &c, 0.1, 3).unwrap();
        assert!(r.diversity > 0.0);
        assert!(r.stored_elements.unwrap() > 0);
    }

    #[test]
    fn checkpoint_then_resume_matches_uninterrupted_run() {
        // This test resumes from a file, which increments the global
        // read counter the two counting tests below assert on.
        let _guard = COUNTER_LOCK.lock().unwrap();
        let d = dataset();
        let c = FairnessConstraint::new(vec![3, 3]).unwrap();
        let dir = std::env::temp_dir().join(format!("fdm_measure_ckpt_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let snap = dir.join("sfdm2.snap");

        let base = RunConfig {
            constraint: c.clone(),
            epsilon: 0.1,
            seed: 0,
            shards: 1,
            window: 0,
            persist: Default::default(),
        };
        let reference = run_algorithm(&d, Algo::Sfdm2, &base).unwrap();

        // Checkpointing run: identical results, snapshot file left behind
        // (the last checkpoint lands at arrival 1400 of the 1500).
        let mut ckpt = base.clone();
        ckpt.persist.snapshot_every = Some(700);
        ckpt.persist.snapshot_path = Some(snap.clone());
        let checkpointed = run_algorithm(&d, Algo::Sfdm2, &ckpt).unwrap();
        assert_eq!(reference.diversity, checkpointed.diversity);
        assert!(snap.exists(), "checkpoint file must be written");

        // Resumed run: restore the 1400-arrival checkpoint, skip the
        // processed prefix, ingest the remaining 100 elements, and land on
        // the identical solution.
        let mut resume = base.clone();
        resume.persist.restore_from = Some(snap.clone());
        let resumed = run_algorithm(&d, Algo::Sfdm2, &resume).unwrap();
        assert_eq!(reference.diversity, resumed.diversity);
        assert_eq!(reference.stored_elements, resumed.stored_elements);

        // A mismatching configuration must be rejected, not ingested.
        let mut wrong = resume.clone();
        wrong.constraint = FairnessConstraint::new(vec![2, 2]).unwrap();
        let err = run_algorithm(&d, Algo::Sfdm2, &wrong).unwrap_err();
        assert!(
            matches!(err, fdm_core::FdmError::IncompatibleSnapshot { .. }),
            "{err}"
        );

        // Restoring across multiple trials (different permutations) must
        // be refused, not silently averaged.
        let err = run_averaged_sharded_persist(&d, Algo::Sfdm2, &c, 0.1, 3, 1, &resume.persist)
            .unwrap_err();
        assert!(
            matches!(err, fdm_core::FdmError::IncompatibleSnapshot { .. }),
            "{err}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Serializes the tests that assert on the global read counter.
    static COUNTER_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn snapshot_reads_happen_once_per_resume() {
        let _guard = COUNTER_LOCK.lock().unwrap();
        // Regression: the prefix-skip resume used to read + parse the
        // snapshot file inside the per-repetition path; the restore must
        // be hoisted so one resume costs exactly one file read.
        let d = dataset();
        let c = FairnessConstraint::new(vec![3, 3]).unwrap();
        let dir = std::env::temp_dir().join(format!("fdm_resume_reads_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let snap = dir.join("sfdm2.snap");

        let mut ckpt = PersistOpts {
            snapshot_every: Some(700),
            snapshot_path: Some(snap.clone()),
            ..Default::default()
        };
        run_averaged_sharded_persist(&d, Algo::Sfdm2, &c, 0.1, 1, 1, &ckpt).unwrap();
        assert!(snap.exists());

        ckpt.snapshot_every = None;
        ckpt.snapshot_path = None;
        ckpt.restore_from = Some(snap.clone());
        let before = snapshot_file_reads();
        run_averaged_sharded_persist(&d, Algo::Sfdm2, &c, 0.1, 1, 1, &ckpt).unwrap();
        assert_eq!(
            snapshot_file_reads() - before,
            1,
            "one resume must cost exactly one snapshot file read"
        );

        // A pre-parsed snapshot needs no file at all: delete it and run
        // again — proof the per-repetition path cannot be re-reading.
        let parsed = Arc::new(Snapshot::read_from_file(&snap).unwrap());
        std::fs::remove_file(&snap).unwrap();
        let preloaded = PersistOpts {
            restore_snapshot: Some(parsed),
            ..Default::default()
        };
        let before = snapshot_file_reads();
        let r = run_averaged_sharded_persist(&d, Algo::Sfdm2, &c, 0.1, 1, 1, &preloaded).unwrap();
        assert!(r.diversity > 0.0);
        assert_eq!(
            snapshot_file_reads(),
            before,
            "a pre-parsed snapshot must not touch the filesystem"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn legacy_sharded_tagged_checkpoint_resumes_unsharded_run() {
        // Pre-registry builds checkpointed every streaming cell through
        // the sharded wrapper, so a --shards 1 checkpoint carries the tag
        // `sharded:sfdm2` (shards = 1). Those documents must keep
        // resuming bit-identically after the DynSummary retarget.
        let d = dataset();
        let c = FairnessConstraint::new(vec![3, 3]).unwrap();
        let reference =
            run_averaged_sharded_persist(&d, Algo::Sfdm2, &c, 0.1, 1, 1, &Default::default())
                .unwrap();
        let bounds = d.sampled_distance_bounds(300, 4.0).unwrap();
        let cfg = fdm_core::streaming::sfdm2::Sfdm2Config {
            constraint: c.clone(),
            epsilon: 0.1,
            bounds,
            metric: d.metric(),
        };
        let mut legacy = fdm_core::streaming::sharded::ShardedStream::<
            fdm_core::streaming::sfdm2::Sfdm2,
        >::new(cfg, 1)
        .unwrap();
        // The prefix of the exact permutation a seed-0 trial streams.
        let order = shuffled_indices(d.len(), 0);
        let elements: Vec<Element> = stream_elements(&d, &order).collect();
        for e in &elements[..1000] {
            legacy.insert(e);
        }
        let snapshot = fdm_core::persist::Snapshottable::snapshot(&legacy);
        assert_eq!(snapshot.params.algorithm, "sharded:sfdm2");
        assert_eq!(snapshot.params.shards, 1);
        let resumed = run_averaged_sharded_persist(
            &d,
            Algo::Sfdm2,
            &c,
            0.1,
            1,
            1,
            &PersistOpts {
                restore_snapshot: Some(Arc::new(snapshot)),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(reference.diversity, resumed.diversity);
        assert_eq!(reference.stored_elements, resumed.stored_elements);
    }

    #[test]
    fn checkpoints_honor_the_configured_format() {
        let _guard = COUNTER_LOCK.lock().unwrap();
        let d = dataset();
        let c = FairnessConstraint::new(vec![2, 2]).unwrap();
        let dir = std::env::temp_dir().join(format!("fdm_ckpt_format_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        for (format, probe) in [
            (SnapshotFormat::Binary, &b"FDMSNAP2"[..]),
            (SnapshotFormat::Json, &b"{"[..]),
        ] {
            let snap = dir.join(format!("ckpt.{}", format.name()));
            let opts = PersistOpts {
                snapshot_every: Some(700),
                snapshot_path: Some(snap.clone()),
                snapshot_format: format,
                ..Default::default()
            };
            run_averaged_sharded_persist(&d, Algo::Sfdm2, &c, 0.1, 1, 1, &opts).unwrap();
            let bytes = std::fs::read(&snap).unwrap();
            assert!(bytes.starts_with(probe), "{format:?}");
            // Either format resumes through the same sniffing reader.
            let resume = PersistOpts {
                restore_from: Some(snap),
                ..Default::default()
            };
            run_averaged_sharded_persist(&d, Algo::Sfdm2, &c, 0.1, 1, 1, &resume).unwrap();
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn metric_is_respected() {
        // Manhattan dataset: diversity measured in Manhattan units.
        let rows: Vec<Vec<f64>> = (0..200)
            .map(|i| vec![(i % 20) as f64, (i / 20) as f64])
            .collect();
        let groups: Vec<usize> = (0..200).map(|i| i % 2).collect();
        let d = Dataset::from_rows(rows, groups, Metric::Manhattan).unwrap();
        let c = FairnessConstraint::new(vec![2, 2]).unwrap();
        let r = run_algorithm(
            &d,
            Algo::Sfdm1,
            &RunConfig {
                constraint: c,
                epsilon: 0.1,
                seed: 1,
                shards: 1,
                window: 0,
                persist: Default::default(),
            },
        )
        .unwrap();
        assert!(r.diversity > 0.0);
    }
}
