//! Shared experiment sweeps used by multiple figure binaries.

use fdm_core::error::Result;
use fdm_core::fairness::FairnessConstraint;

use crate::cli::Options;
use crate::measure::{run_averaged, Algo, RunResult};
use crate::workloads::Workload;

/// One measured cell of a `k`-sweep: `(workload, k, result)`.
pub type SweepCell = (Workload, usize, RunResult);

/// The eight dataset/group panels of Figs. 6 and 7, in paper order.
pub fn fig6_panels() -> Vec<Workload> {
    vec![
        Workload::AdultSex,     // (a) m = 2
        Workload::CelebaAge,    // (b) m = 2
        Workload::CelebaSex,    // (c) m = 2
        Workload::CensusSex,    // (d) m = 2
        Workload::AdultRace,    // (e) m = 5
        Workload::CelebaSexAge, // (f) m = 4
        Workload::CensusAge,    // (g) m = 7
        Workload::LyricsGenre,  // (h) m = 15
    ]
}

/// The paper's `k` range for a panel: `[5, 50]` for `m ≤ 5`, `[10, 50]`
/// for `5 < m ≤ 10`, `[15, 50]` for `m > 10` ("an algorithm must pick at
/// least one element from each group").
pub fn k_values(m: usize) -> Vec<usize> {
    let start = if m <= 5 {
        5
    } else if m <= 10 {
        10
    } else {
        15
    };
    (start..=50).step_by(5).filter(|&k| k >= m).collect()
}

/// Which algorithms run in a Fig. 6/7 panel for a given `m` and `k`:
/// GMM always; FairSwap/SFDM1 for `m = 2`; FairGMM for `k ≤ 10, m = 2`
/// (its enumeration explodes beyond that, as the paper notes); FairFlow and
/// SFDM2 always.
pub fn panel_algos(m: usize, k: usize) -> Vec<Algo> {
    let mut algos = vec![Algo::Gmm];
    if m == 2 {
        algos.push(Algo::FairSwap);
        if k <= 10 {
            algos.push(Algo::FairGmm);
        }
        algos.push(Algo::Sfdm1);
    }
    algos.push(Algo::FairFlow);
    algos.push(Algo::Sfdm2);
    algos
}

/// Runs the full Figs. 6/7 sweep (all panels × k × algorithms), returning
/// every cell; the figure binaries project out the column they plot.
pub fn sweep_k(opts: &Options) -> Result<Vec<SweepCell>> {
    let mut cells = Vec::new();
    for workload in fig6_panels() {
        let m = workload.num_groups();
        let dataset = workload.build(opts.size, opts.seed)?;
        eprintln!(
            "sweeping {} (n = {}, m = {m}) ...",
            workload.name(),
            dataset.len()
        );
        for k in k_values(m) {
            let constraint = FairnessConstraint::equal_representation(k, m)?;
            for algo in panel_algos(m, k) {
                let r = run_averaged(
                    &dataset,
                    algo,
                    &constraint,
                    workload.default_epsilon(),
                    opts.trials,
                )?;
                cells.push((workload, k, r));
            }
        }
    }
    Ok(cells)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k_ranges_match_paper() {
        assert_eq!(k_values(2), vec![5, 10, 15, 20, 25, 30, 35, 40, 45, 50]);
        assert_eq!(k_values(7), vec![10, 15, 20, 25, 30, 35, 40, 45, 50]);
        assert_eq!(k_values(15), vec![15, 20, 25, 30, 35, 40, 45, 50]);
    }

    #[test]
    fn panel_algorithm_selection() {
        let a = panel_algos(2, 10);
        assert!(a.contains(&Algo::FairSwap));
        assert!(a.contains(&Algo::FairGmm));
        assert!(a.contains(&Algo::Sfdm1));
        let a = panel_algos(2, 20);
        assert!(
            !a.contains(&Algo::FairGmm),
            "FairGMM cannot scale past k=10"
        );
        let a = panel_algos(7, 20);
        assert!(!a.contains(&Algo::FairSwap));
        assert!(!a.contains(&Algo::Sfdm1));
        assert!(a.contains(&Algo::FairFlow) && a.contains(&Algo::Sfdm2));
    }

    #[test]
    fn eight_panels() {
        assert_eq!(fig6_panels().len(), 8);
    }
}
