//! Criterion micro-benchmarks of the streaming hot path: per-element insert
//! cost of Algorithm 1, SFDM1, and SFDM2 as `k`, `ε`, and `m` vary — the
//! wall-clock axis of Figs. 5 and 7 (streaming curves).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fdm_core::dataset::Dataset;
use fdm_core::fairness::FairnessConstraint;
use fdm_core::streaming::sfdm1::{Sfdm1, Sfdm1Config};
use fdm_core::streaming::sfdm2::{Sfdm2, Sfdm2Config};
use fdm_core::streaming::unconstrained::{StreamingDiversityMaximization, StreamingDmConfig};
use fdm_datasets::synthetic::{synthetic_blobs, SyntheticConfig};
use std::hint::black_box;

const STREAM: usize = 5_000;

fn dataset(m: usize) -> Dataset {
    synthetic_blobs(SyntheticConfig {
        n: STREAM,
        m,
        blobs: 10,
        seed: 1,
        dim: 2,
    })
    .unwrap()
}

fn dataset_dim(m: usize, dim: usize) -> Dataset {
    synthetic_blobs(SyntheticConfig {
        n: STREAM,
        m,
        blobs: 10,
        seed: 1,
        dim,
    })
    .unwrap()
}

fn bench_algorithm1_insert(c: &mut Criterion) {
    let data = dataset(2);
    let bounds = data.sampled_distance_bounds(300, 4.0).unwrap();
    let mut group = c.benchmark_group("alg1_insert");
    group.throughput(Throughput::Elements(STREAM as u64));
    for k in [10usize, 20, 40] {
        group.bench_with_input(BenchmarkId::new("k", k), &k, |b, &k| {
            b.iter(|| {
                let mut alg = StreamingDiversityMaximization::new(StreamingDmConfig {
                    k,
                    epsilon: 0.1,
                    bounds,
                    metric: data.metric(),
                })
                .unwrap();
                for e in data.iter() {
                    alg.insert(black_box(&e));
                }
                black_box(alg.stored_elements())
            })
        });
    }
    group.finish();
}

fn bench_sfdm1_insert_epsilon(c: &mut Criterion) {
    let data = dataset(2);
    let bounds = data.sampled_distance_bounds(300, 4.0).unwrap();
    let constraint = FairnessConstraint::equal_representation(20, 2).unwrap();
    let mut group = c.benchmark_group("sfdm1_insert");
    group.throughput(Throughput::Elements(STREAM as u64));
    for eps in [0.05f64, 0.1, 0.25] {
        group.bench_with_input(
            BenchmarkId::new("epsilon", format!("{eps}")),
            &eps,
            |b, &eps| {
                b.iter(|| {
                    let mut alg = Sfdm1::new(Sfdm1Config {
                        constraint: constraint.clone(),
                        epsilon: eps,
                        bounds,
                        metric: data.metric(),
                    })
                    .unwrap();
                    for e in data.iter() {
                        alg.insert(black_box(&e));
                    }
                    black_box(alg.stored_elements())
                })
            },
        );
    }
    group.finish();
}

fn bench_sfdm2_insert_m(c: &mut Criterion) {
    let mut group = c.benchmark_group("sfdm2_insert");
    group.throughput(Throughput::Elements(STREAM as u64));
    for m in [2usize, 5, 10] {
        let data = dataset(m);
        let bounds = data.sampled_distance_bounds(300, 4.0).unwrap();
        let constraint = FairnessConstraint::equal_representation(20, m).unwrap();
        group.bench_with_input(BenchmarkId::new("m", m), &m, |b, _| {
            b.iter(|| {
                let mut alg = Sfdm2::new(Sfdm2Config {
                    constraint: constraint.clone(),
                    epsilon: 0.1,
                    bounds,
                    metric: data.metric(),
                })
                .unwrap();
                for e in data.iter() {
                    alg.insert(black_box(&e));
                }
                black_box(alg.stored_elements())
            })
        });
    }
    group.finish();
}

/// The headline perf case of docs/performance.md: per-element insert cost
/// at `d = 128`, where the distance kernels dominate completely.
fn bench_insert_high_dim(c: &mut Criterion) {
    let mut group = c.benchmark_group("stream_insert_d");
    group.throughput(Throughput::Elements(STREAM as u64));
    for dim in [32usize, 128] {
        let data = dataset_dim(2, dim);
        let bounds = data.sampled_distance_bounds(300, 4.0).unwrap();
        let constraint = FairnessConstraint::equal_representation(20, 2).unwrap();
        group.bench_with_input(BenchmarkId::new("sfdm2", dim), &dim, |b, _| {
            b.iter(|| {
                let mut alg = Sfdm2::new(Sfdm2Config {
                    constraint: constraint.clone(),
                    epsilon: 0.1,
                    bounds,
                    metric: data.metric(),
                })
                .unwrap();
                for e in data.iter() {
                    alg.insert(black_box(&e));
                }
                black_box(alg.stored_elements())
            })
        });
        // Same stream through the batch API: pre-materialized elements,
        // candidates probed concurrently under `--features parallel`.
        let elements: Vec<_> = data.iter().collect();
        group.bench_with_input(BenchmarkId::new("sfdm2_batch", dim), &dim, |b, _| {
            b.iter(|| {
                let mut alg = Sfdm2::new(Sfdm2Config {
                    constraint: constraint.clone(),
                    epsilon: 0.1,
                    bounds,
                    metric: data.metric(),
                })
                .unwrap();
                for chunk in elements.chunks(512) {
                    alg.insert_batch(black_box(chunk));
                }
                black_box(alg.stored_elements())
            })
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_algorithm1_insert, bench_sfdm1_insert_epsilon, bench_sfdm2_insert_m,
        bench_insert_high_dim
);
criterion_main!(benches);
