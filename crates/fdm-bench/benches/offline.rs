//! Criterion benchmarks of the offline baselines vs dataset size — the
//! `O(n)`-scaling curves of Fig. 10's time panels (GMM, FairSwap, FairFlow).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fdm_core::balance::SwapStrategy;
use fdm_core::fairness::FairnessConstraint;
use fdm_core::offline::fair_flow::{FairFlow, FairFlowConfig};
use fdm_core::offline::fair_swap::{FairSwap, FairSwapConfig};
use fdm_core::offline::gmm::gmm;
use fdm_datasets::synthetic::{synthetic_blobs, SyntheticConfig};
use std::hint::black_box;

fn bench_gmm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gmm");
    for n in [1_000usize, 10_000, 50_000] {
        let data = synthetic_blobs(SyntheticConfig {
            n,
            m: 2,
            blobs: 10,
            seed: 4,
            dim: 2,
        })
        .unwrap();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("n", n), &data, |b, data| {
            b.iter(|| black_box(gmm(data, 20, 0).len()))
        });
    }
    group.finish();
}

fn bench_fair_swap(c: &mut Criterion) {
    let mut group = c.benchmark_group("fair_swap");
    let constraint = FairnessConstraint::equal_representation(20, 2).unwrap();
    for n in [1_000usize, 10_000, 50_000] {
        let data = synthetic_blobs(SyntheticConfig {
            n,
            m: 2,
            blobs: 10,
            seed: 5,
            dim: 2,
        })
        .unwrap();
        let alg = FairSwap::new(FairSwapConfig {
            constraint: constraint.clone(),
            seed: 0,
            strategy: SwapStrategy::Greedy,
        })
        .unwrap();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("n", n), &data, |b, data| {
            b.iter(|| black_box(alg.run(data).unwrap().diversity))
        });
    }
    group.finish();
}

fn bench_fair_flow(c: &mut Criterion) {
    let mut group = c.benchmark_group("fair_flow");
    for m in [2usize, 10] {
        let constraint = FairnessConstraint::equal_representation(20, m).unwrap();
        let data = synthetic_blobs(SyntheticConfig {
            n: 10_000,
            m,
            blobs: 10,
            seed: 6,
            dim: 2,
        })
        .unwrap();
        let alg = FairFlow::new(FairFlowConfig {
            constraint,
            seed: 0,
        })
        .unwrap();
        group.bench_with_input(BenchmarkId::new("m", m), &data, |b, data| {
            b.iter(|| black_box(alg.run(data).unwrap().diversity))
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_gmm, bench_fair_swap, bench_fair_flow
);
criterion_main!(benches);
