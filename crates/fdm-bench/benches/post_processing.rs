//! Criterion benchmarks of the post-processing phase: SFDM1's swap
//! balancing vs SFDM2's clustering + matroid intersection, as `m` grows —
//! the cost the paper bounds as `O(k² log(∆)/ε)` and
//! `O(k² m log(∆)/ε · (m + log² k))` respectively (Theorems 3 and 5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fdm_core::fairness::FairnessConstraint;
use fdm_core::streaming::sfdm1::{Sfdm1, Sfdm1Config};
use fdm_core::streaming::sfdm2::{Sfdm2, Sfdm2Config};
use fdm_datasets::synthetic::{synthetic_blobs, SyntheticConfig};
use std::hint::black_box;

fn bench_sfdm1_post(c: &mut Criterion) {
    let data = synthetic_blobs(SyntheticConfig {
        n: 5_000,
        m: 2,
        blobs: 10,
        seed: 2,
        dim: 2,
    })
    .unwrap();
    let bounds = data.sampled_distance_bounds(300, 4.0).unwrap();
    let mut group = c.benchmark_group("sfdm1_post");
    for k in [10usize, 20, 40] {
        let constraint = FairnessConstraint::equal_representation(k, 2).unwrap();
        let mut alg = Sfdm1::new(Sfdm1Config {
            constraint,
            epsilon: 0.1,
            bounds,
            metric: data.metric(),
        })
        .unwrap();
        for e in data.iter() {
            alg.insert(&e);
        }
        group.bench_with_input(BenchmarkId::new("k", k), &alg, |b, alg| {
            b.iter(|| black_box(alg.finalize().unwrap().diversity))
        });
    }
    group.finish();
}

fn bench_sfdm2_post(c: &mut Criterion) {
    let mut group = c.benchmark_group("sfdm2_post");
    for m in [2usize, 5, 10] {
        let data = synthetic_blobs(SyntheticConfig {
            n: 5_000,
            m,
            blobs: 10,
            seed: 3,
            dim: 2,
        })
        .unwrap();
        let bounds = data.sampled_distance_bounds(300, 4.0).unwrap();
        let constraint = FairnessConstraint::equal_representation(20, m).unwrap();
        let mut alg = Sfdm2::new(Sfdm2Config {
            constraint,
            epsilon: 0.1,
            bounds,
            metric: data.metric(),
        })
        .unwrap();
        for e in data.iter() {
            alg.insert(&e);
        }
        group.bench_with_input(BenchmarkId::new("m", m), &alg, |b, alg| {
            b.iter(|| black_box(alg.finalize().unwrap().diversity))
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sfdm1_post, bench_sfdm2_post
);
criterion_main!(benches);
