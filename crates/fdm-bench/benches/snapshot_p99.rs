//! Tail-latency benchmark for the durable insert path: p99 (and p50)
//! per-`INSERT` wall clock through a real `fdm-serve` [`Engine`] with a
//! data dir attached, so every measured insert carries its WAL append
//! and its share of dirty-set delta checkpoints.
//!
//! This is the number the incremental-checkpoint work exists to protect:
//! with delta capture the periodic checkpoint touches `O(changed)` state
//! and chain collapse happens on a background thread, so the insert p99
//! should sit close to the p50. The `full_only` variant (`full_every=0`,
//! every checkpoint a full inline snapshot) is the pre-delta behaviour —
//! its p99 shows the stall the delta chain removes. Batches are timed
//! per-insert and reduced to a percentile *inside* each sample (via
//! `Bencher::iter_custom`), so the recorded `median_ns` in
//! `BENCH_snapshot.json` is a median-of-batch-percentiles: a stable tail
//! estimate rather than a single noisy worst case.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fdm_core::point::Element;
use fdm_serve::protocol::{parse_line, Request, StreamSpec};
use fdm_serve::{Engine, ServeConfig};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

const OPEN: &str = "OPEN jobs sfdm2 quotas=2,2 eps=0.1 dmin=0.05 dmax=30";

/// Inserts per timed sample. Per-insert latencies inside one batch feed
/// one percentile estimate; the fast setting keeps the CI smoke run
/// under a few seconds while still crossing several checkpoint and
/// compaction boundaries per batch (snapshot every 4 inserts).
fn batch_size() -> usize {
    let fast = std::env::var("FDM_BENCH_FAST")
        .map(|v| v == "1")
        .unwrap_or(false);
    if fast {
        256
    } else {
        1024
    }
}

fn open_spec() -> StreamSpec {
    match parse_line(OPEN).unwrap().unwrap() {
        Request::Open { spec, .. } => spec,
        other => panic!("unexpected parse of OPEN: {other:?}"),
    }
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "fdm_bench_snapshot_p99_{}_{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A durable engine checkpointing aggressively (every 4 inserts) so the
/// checkpoint cost is *in* the measured distribution, not amortised away.
fn durable_engine(dir: &Path, full_every: u64) -> Engine {
    Engine::new(ServeConfig {
        data_dir: Some(dir.to_path_buf()),
        snapshot_every: Some(4),
        full_every,
        ..ServeConfig::default()
    })
    .unwrap()
}

/// One element of the same deterministic pseudo-stream the serve tests
/// use: two groups, bounded 2-d coordinates.
fn element(i: usize) -> (Element, String) {
    let x = (i as f64 * 0.7391).sin() * 9.0;
    let y = (i as f64 * 0.2113).cos() * 9.0;
    let line = format!("INSERT {i} {} {x} {y}", i % 2);
    (Element::new(i, vec![x, y], i % 2), line)
}

/// Runs one batch of inserts, returning the `q`-quantile of the
/// per-insert latencies (nearest-rank on the sorted batch).
fn insert_batch_quantile(engine: &Engine, next_id: &mut usize, q: f64) -> Duration {
    let batch = batch_size();
    let mut latencies = Vec::with_capacity(batch);
    for _ in 0..batch {
        let (el, line) = element(*next_id);
        *next_id += 1;
        let start = Instant::now();
        engine
            .insert("jobs", &el, &line)
            .expect("bench insert failed");
        latencies.push(start.elapsed());
    }
    latencies.sort_unstable();
    let rank = ((latencies.len() as f64 * q).ceil() as usize).clamp(1, latencies.len()) - 1;
    latencies[rank]
}

fn bench_insert_tail(c: &mut Criterion) {
    let mut group = c.benchmark_group("snapshot_p99");
    // (label, full_every): the delta chain vs. the inline-full baseline.
    for (label, full_every) in [("delta_chain", 8u64), ("full_only", 0u64)] {
        let dir = scratch(label);
        let engine = durable_engine(&dir, full_every);
        engine.open("jobs", &open_spec()).unwrap();
        let mut next_id = 0usize;
        group.bench_with_input(
            BenchmarkId::new("insert_p99", label),
            &full_every,
            |b, _| b.iter_custom(|_| insert_batch_quantile(&engine, &mut next_id, 0.99)),
        );
        group.bench_with_input(
            BenchmarkId::new("insert_p50", label),
            &full_every,
            |b, _| b.iter_custom(|_| insert_batch_quantile(&engine, &mut next_id, 0.50)),
        );
        drop(engine);
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

criterion_group!(benches, bench_insert_tail);
criterion_main!(benches);
