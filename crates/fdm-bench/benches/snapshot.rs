//! Criterion micro-benchmarks of snapshot/restore persistence: capture
//! and restore in both encodings (v1 JSON text vs the v2 binary codec),
//! the full round trip, and incremental (delta) capture, on an SFDM2
//! summary fed the same 5 000-element workload as `stream_insert`'s
//! headline case.
//!
//! The paper's space bound is what makes this cheap: the summary holds
//! `O(m·k·log ∆/ε)` elements regardless of how long the stream ran, so
//! checkpoint cost is flat in stream length — worth pinning with a bench
//! so a persistence regression (e.g. accidentally serializing per-arrival
//! scratch state) shows up as a step change. The JSON-vs-binary pairs are
//! the headline numbers behind `docs/performance.md`'s snapshot section;
//! the process also prints the encoded sizes (continuous *and*
//! categorical coordinates) so size ratios land in the bench log.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fdm_core::fairness::FairnessConstraint;
use fdm_core::persist::{Snapshot, SnapshotDelta, SnapshotFormat, Snapshottable};
use fdm_core::point::Element;
use fdm_core::streaming::sfdm2::{Sfdm2, Sfdm2Config};
use fdm_core::streaming::sharded::ShardedStream;
use fdm_datasets::synthetic::{synthetic_blobs, SyntheticConfig};
use std::hint::black_box;

const STREAM: usize = 5_000;

fn loaded_sfdm2(dim: usize) -> Sfdm2 {
    let data = synthetic_blobs(SyntheticConfig {
        n: STREAM,
        m: 2,
        blobs: 10,
        seed: 1,
        dim,
    })
    .unwrap();
    let mut alg = Sfdm2::new(Sfdm2Config {
        constraint: FairnessConstraint::equal_representation(20, 2).unwrap(),
        epsilon: 0.1,
        bounds: data.sampled_distance_bounds(300, 4.0).unwrap(),
        metric: data.metric(),
    })
    .unwrap();
    for e in data.iter() {
        alg.insert(&e);
    }
    alg
}

/// A categorical workload: 40 binary attributes per element (the
/// CelebA-style shape where the v2 bit-packing shines).
fn loaded_categorical() -> Sfdm2 {
    let mut alg = Sfdm2::new(Sfdm2Config {
        constraint: FairnessConstraint::new(vec![10, 10]).unwrap(),
        epsilon: 0.1,
        bounds: fdm_core::dataset::DistanceBounds::new(0.5, 7.0).unwrap(),
        metric: fdm_core::metric::Metric::Euclidean,
    })
    .unwrap();
    for i in 0..STREAM {
        let point: Vec<f64> = (0..40)
            .map(|d| f64::from(((i * 2_654_435_761) >> d) as u32 & 1))
            .collect();
        alg.insert(&Element::new(i, point, i % 2));
    }
    alg
}

fn report_sizes(label: &str, snap: &Snapshot) {
    let json = snap.to_bytes(SnapshotFormat::Json).len();
    let bin = snap.to_bytes(SnapshotFormat::Binary).len();
    eprintln!(
        "snapshot-size {label}: json={json}B bin={bin}B ratio={:.2}x",
        json as f64 / bin as f64
    );
}

fn bench_snapshot_roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("snapshot");
    for dim in [16usize, 128] {
        let alg = loaded_sfdm2(dim);
        let snap = alg.snapshot();
        report_sizes(&format!("sfdm2_d{dim}"), &snap);
        let json = snap.to_bytes(SnapshotFormat::Json);
        let bin = snap.to_bytes(SnapshotFormat::Binary);
        group.bench_with_input(BenchmarkId::new("capture_json_d", dim), &dim, |b, _| {
            b.iter(|| {
                black_box(&alg)
                    .snapshot()
                    .to_bytes(SnapshotFormat::Json)
                    .len()
            })
        });
        group.bench_with_input(BenchmarkId::new("capture_bin_d", dim), &dim, |b, _| {
            b.iter(|| {
                black_box(&alg)
                    .snapshot()
                    .to_bytes(SnapshotFormat::Binary)
                    .len()
            })
        });
        group.bench_with_input(BenchmarkId::new("restore_json_d", dim), &dim, |b, _| {
            b.iter(|| {
                let snap = Snapshot::from_bytes(black_box(&json)).unwrap();
                Sfdm2::restore(&snap).unwrap().stored_elements()
            })
        });
        group.bench_with_input(BenchmarkId::new("restore_bin_d", dim), &dim, |b, _| {
            b.iter(|| {
                let snap = Snapshot::from_bytes(black_box(&bin)).unwrap();
                Sfdm2::restore(&snap).unwrap().stored_elements()
            })
        });
        group.bench_with_input(BenchmarkId::new("roundtrip_bin_d", dim), &dim, |b, _| {
            b.iter(|| {
                let bytes = black_box(&alg).snapshot().to_bytes(SnapshotFormat::Binary);
                let snap = Snapshot::from_bytes(&bytes).unwrap();
                Sfdm2::restore(&snap).unwrap().stored_elements()
            })
        });
    }

    // Categorical coordinates: the bit-packed fast path.
    {
        let alg = loaded_categorical();
        report_sizes("sfdm2_categorical_d40", &alg.snapshot());
        group.bench_function("capture_json_categorical", |b| {
            b.iter(|| {
                black_box(&alg)
                    .snapshot()
                    .to_bytes(SnapshotFormat::Json)
                    .len()
            })
        });
        group.bench_function("capture_bin_categorical", |b| {
            b.iter(|| {
                black_box(&alg)
                    .snapshot()
                    .to_bytes(SnapshotFormat::Binary)
                    .len()
            })
        });
    }

    // Incremental capture: delta against the previous checkpoint instead
    // of a full rewrite.
    {
        let data = synthetic_blobs(SyntheticConfig {
            n: STREAM,
            m: 2,
            blobs: 10,
            seed: 1,
            dim: 16,
        })
        .unwrap();
        let mut alg = Sfdm2::new(Sfdm2Config {
            constraint: FairnessConstraint::equal_representation(20, 2).unwrap(),
            epsilon: 0.1,
            bounds: data.sampled_distance_bounds(300, 4.0).unwrap(),
            metric: data.metric(),
        })
        .unwrap();
        let elements: Vec<Element> = data.iter().collect();
        for e in &elements[..4_500] {
            alg.insert(e);
        }
        let base = alg.snapshot();
        for e in &elements[4_500..] {
            alg.insert(e);
        }
        let full = alg.snapshot();
        let delta = SnapshotDelta::between(&base, &full).unwrap();
        eprintln!(
            "snapshot-size sfdm2_d16 delta(last 10% of stream): full_bin={}B delta={}B",
            full.to_bytes(SnapshotFormat::Binary).len(),
            delta.encoded_len()
        );
        group.bench_function("capture_delta_d16", |b| {
            b.iter(|| {
                SnapshotDelta::between(black_box(&base), &black_box(&alg).snapshot())
                    .unwrap()
                    .encoded_len()
            })
        });
        group.bench_function("apply_delta_d16", |b| {
            b.iter(|| delta.apply_to(black_box(&base)).unwrap().state.is_null())
        });
    }

    // Sharded wrapper: K shard states in one envelope.
    let data = synthetic_blobs(SyntheticConfig {
        n: STREAM,
        m: 2,
        blobs: 10,
        seed: 1,
        dim: 16,
    })
    .unwrap();
    let config = Sfdm2Config {
        constraint: FairnessConstraint::equal_representation(20, 2).unwrap(),
        epsilon: 0.1,
        bounds: data.sampled_distance_bounds(300, 4.0).unwrap(),
        metric: data.metric(),
    };
    let mut sharded: ShardedStream<Sfdm2> = ShardedStream::new(config, 4).unwrap();
    for e in data.iter() {
        sharded.insert(&e);
    }
    group.bench_function("roundtrip_sharded_k4_d16", |b| {
        b.iter(|| {
            let bytes = black_box(&sharded)
                .snapshot()
                .to_bytes(SnapshotFormat::Binary);
            let snap = Snapshot::from_bytes(&bytes).unwrap();
            ShardedStream::<Sfdm2>::restore(&snap)
                .unwrap()
                .stored_elements()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_snapshot_roundtrip);
criterion_main!(benches);
