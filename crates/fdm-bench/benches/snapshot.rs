//! Criterion micro-benchmarks of snapshot/restore persistence: capture
//! (state → value tree → JSON text), restore (JSON text → validated
//! summary), and the full round trip, on an SFDM2 summary fed the same
//! 5 000-element workload as `stream_insert`'s headline case.
//!
//! The paper's space bound is what makes this cheap: the summary holds
//! `O(m·k·log ∆/ε)` elements regardless of how long the stream ran, so
//! checkpoint cost is flat in stream length — worth pinning with a bench
//! so a persistence regression (e.g. accidentally serializing per-arrival
//! scratch state) shows up as a step change.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fdm_core::fairness::FairnessConstraint;
use fdm_core::persist::{Snapshot, Snapshottable};
use fdm_core::streaming::sfdm2::{Sfdm2, Sfdm2Config};
use fdm_core::streaming::sharded::ShardedStream;
use fdm_datasets::synthetic::{synthetic_blobs, SyntheticConfig};
use std::hint::black_box;

const STREAM: usize = 5_000;

fn loaded_sfdm2(dim: usize) -> Sfdm2 {
    let data = synthetic_blobs(SyntheticConfig {
        n: STREAM,
        m: 2,
        blobs: 10,
        seed: 1,
        dim,
    })
    .unwrap();
    let mut alg = Sfdm2::new(Sfdm2Config {
        constraint: FairnessConstraint::equal_representation(20, 2).unwrap(),
        epsilon: 0.1,
        bounds: data.sampled_distance_bounds(300, 4.0).unwrap(),
        metric: data.metric(),
    })
    .unwrap();
    for e in data.iter() {
        alg.insert(&e);
    }
    alg
}

fn bench_snapshot_roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("snapshot");
    for dim in [16usize, 128] {
        let alg = loaded_sfdm2(dim);
        let text = alg.snapshot().to_json();
        group.bench_with_input(BenchmarkId::new("capture_d", dim), &dim, |b, _| {
            b.iter(|| black_box(&alg).snapshot().to_json().len())
        });
        group.bench_with_input(BenchmarkId::new("restore_d", dim), &dim, |b, _| {
            b.iter(|| {
                let snap = Snapshot::from_json(black_box(&text)).unwrap();
                Sfdm2::restore(&snap).unwrap().stored_elements()
            })
        });
        group.bench_with_input(BenchmarkId::new("roundtrip_d", dim), &dim, |b, _| {
            b.iter(|| {
                let text = black_box(&alg).snapshot().to_json();
                let snap = Snapshot::from_json(&text).unwrap();
                Sfdm2::restore(&snap).unwrap().stored_elements()
            })
        });
    }
    // Sharded wrapper: K shard states in one envelope.
    let data = synthetic_blobs(SyntheticConfig {
        n: STREAM,
        m: 2,
        blobs: 10,
        seed: 1,
        dim: 16,
    })
    .unwrap();
    let config = Sfdm2Config {
        constraint: FairnessConstraint::equal_representation(20, 2).unwrap(),
        epsilon: 0.1,
        bounds: data.sampled_distance_bounds(300, 4.0).unwrap(),
        metric: data.metric(),
    };
    let mut sharded: ShardedStream<Sfdm2> = ShardedStream::new(config, 4).unwrap();
    for e in data.iter() {
        sharded.insert(&e);
    }
    group.bench_function("roundtrip_sharded_k4_d16", |b| {
        b.iter(|| {
            let text = black_box(&sharded).snapshot().to_json();
            let snap = Snapshot::from_json(&text).unwrap();
            ShardedStream::<Sfdm2>::restore(&snap)
                .unwrap()
                .stored_elements()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_snapshot_roundtrip);
criterion_main!(benches);
