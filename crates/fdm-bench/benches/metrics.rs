//! Criterion benchmarks of the distance kernels — the innermost operation
//! of every algorithm, at the dimensionalities of Table I (2, 6, 25, 41,
//! 50).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fdm_core::metric::Metric;
use rand::prelude::*;
use std::hint::black_box;

fn bench_kernels(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let metrics = [
        ("euclidean", Metric::Euclidean),
        ("manhattan", Metric::Manhattan),
        ("chebyshev", Metric::Chebyshev),
        ("angular", Metric::Angular),
    ];
    for (name, metric) in metrics {
        let mut group = c.benchmark_group(name);
        for dim in [2usize, 6, 25, 41, 50] {
            let a: Vec<f64> = (0..dim).map(|_| rng.random()).collect();
            let b_point: Vec<f64> = (0..dim).map(|_| rng.random()).collect();
            group.bench_with_input(BenchmarkId::new("dim", dim), &dim, |bench, _| {
                bench.iter(|| black_box(metric.dist(black_box(&a), black_box(&b_point))))
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
