//! Criterion benchmarks of the distance kernels — the innermost operation
//! of every algorithm, at the dimensionalities of Table I (2, 6, 25, 41,
//! 50) plus the wide rows (64, 128, 256) where the SIMD backends pay off.
//!
//! The `kernel_dispatch` group pins the dispatched kernels against the
//! scalar references at d ≥ 64: `dispatch/*` rows go through
//! `fdm_core::kernel` (SSE2/AVX2 when the host offers it), `scalar/*` rows
//! call the reference `metric::kernels` directly. The ratio of the two is
//! the headline speedup quoted in docs/performance.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fdm_core::kernel;
use fdm_core::metric::{kernels, Metric};
use rand::prelude::*;
use std::hint::black_box;

fn bench_kernels(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let metrics = [
        ("euclidean", Metric::Euclidean),
        ("manhattan", Metric::Manhattan),
        ("chebyshev", Metric::Chebyshev),
        ("angular", Metric::Angular),
    ];
    for (name, metric) in metrics {
        let mut group = c.benchmark_group(name);
        for dim in [2usize, 6, 25, 41, 50, 64, 128, 256] {
            let a: Vec<f64> = (0..dim).map(|_| rng.random()).collect();
            let b_point: Vec<f64> = (0..dim).map(|_| rng.random()).collect();
            group.bench_with_input(BenchmarkId::new("dim", dim), &dim, |bench, _| {
                bench.iter(|| black_box(metric.dist(black_box(&a), black_box(&b_point))))
            });
        }
        group.finish();
    }
}

/// Dispatched vs scalar accumulation kernels at the wide dimensions, where
/// the acceptance bar for the SIMD backends lives (d ≥ 64).
fn bench_dispatch_vs_scalar(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(11);
    let mut group = c.benchmark_group("kernel_dispatch");
    for dim in [64usize, 128, 256] {
        let a: Vec<f64> = (0..dim).map(|_| rng.random()).collect();
        let b: Vec<f64> = (0..dim).map(|_| rng.random()).collect();
        type Pair = (
            &'static str,
            fn(&[f64], &[f64]) -> f64,
            fn(&[f64], &[f64]) -> f64,
        );
        let pairs: [Pair; 3] = [
            ("sum_sq_diff", kernel::sum_sq_diff, kernels::sum_sq_diff),
            ("sum_abs_diff", kernel::sum_abs_diff, kernels::sum_abs_diff),
            ("dot", kernel::dot, kernels::dot),
        ];
        for (name, dispatched, scalar) in pairs {
            group.bench_with_input(
                BenchmarkId::new(format!("dispatch/{name}"), dim),
                &dim,
                |bench, _| bench.iter(|| black_box(dispatched(black_box(&a), black_box(&b)))),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("scalar/{name}"), dim),
                &dim,
                |bench, _| bench.iter(|| black_box(scalar(black_box(&a), black_box(&b)))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_kernels, bench_dispatch_vs_scalar);
criterion_main!(benches);
