//! Criterion micro-benchmarks of sharded stream ingestion: the same
//! 5 000-element SFDM2 workload as `stream_insert`'s headline case, routed
//! through [`ShardedStream`] at K ∈ {1, 2, 4} shards plus the unsharded
//! reference — the wall-clock axis of the scale-out story.
//!
//! `K = 1` measures the wrapper overhead over the plain algorithm (it must
//! be negligible: same candidates, same arena, one extra indirection).
//! `K > 1` shows the fan-out: on a single core it costs the merge pass; on
//! a multi-core box with `--features parallel` the sub-batches run
//! concurrently on the persistent pool.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fdm_core::dataset::Dataset;
use fdm_core::fairness::FairnessConstraint;
use fdm_core::point::Element;
use fdm_core::streaming::sfdm2::{Sfdm2, Sfdm2Config};
use fdm_core::streaming::sharded::ShardedStream;
use fdm_datasets::synthetic::{synthetic_blobs, SyntheticConfig};
use std::hint::black_box;

const STREAM: usize = 5_000;
const BATCH: usize = 512;

fn workload(dim: usize) -> (Dataset, Sfdm2Config) {
    let data = synthetic_blobs(SyntheticConfig {
        n: STREAM,
        m: 2,
        blobs: 10,
        seed: 1,
        dim,
    })
    .unwrap();
    let bounds = data.sampled_distance_bounds(300, 4.0).unwrap();
    let config = Sfdm2Config {
        constraint: FairnessConstraint::equal_representation(20, 2).unwrap(),
        epsilon: 0.1,
        bounds,
        metric: data.metric(),
    };
    (data, config)
}

/// Full pipeline cost (ingestion + merge + post-processing) per shard
/// count, at the headline d = 128.
fn bench_sharded_pipeline(c: &mut Criterion) {
    let (data, config) = workload(128);
    let elements: Vec<Element> = data.iter().collect();
    let mut group = c.benchmark_group("stream_shards");
    group.throughput(Throughput::Elements(STREAM as u64));
    for shards in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("sfdm2_k", shards),
            &shards,
            |b, &shards| {
                b.iter(|| {
                    let mut alg: ShardedStream<Sfdm2> =
                        ShardedStream::new(config.clone(), shards).unwrap();
                    for chunk in elements.chunks(BATCH) {
                        alg.insert_batch(black_box(chunk));
                    }
                    black_box(alg.finalize().ok().map(|s| s.diversity))
                })
            },
        );
    }
    // Unsharded reference on the same stream (element-by-element insert +
    // finalize), so the K = 1 overhead is directly readable.
    group.bench_function("sfdm2_unsharded", |b| {
        b.iter(|| {
            let mut alg = Sfdm2::new(config.clone()).unwrap();
            for e in &elements {
                alg.insert(black_box(e));
            }
            black_box(alg.finalize().ok().map(|s| s.diversity))
        })
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sharded_pipeline
);
criterion_main!(benches);
