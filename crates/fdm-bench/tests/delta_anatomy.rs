//! Diagnostic: where do the delta bytes go for the bench workload?
//! Run with `cargo test -p fdm-bench --test delta_anatomy -- --nocapture --ignored`.

use fdm_core::fairness::FairnessConstraint;
use fdm_core::persist::{Snapshot, SnapshotDelta, SnapshotFormat, Snapshottable};
use fdm_core::point::Element;
use fdm_core::streaming::sfdm2::{Sfdm2, Sfdm2Config};
use fdm_datasets::synthetic::{synthetic_blobs, SyntheticConfig};
use serde::{Map, Value};

fn elements(n: usize, seed: u64, offset: usize) -> Vec<Element> {
    let data = synthetic_blobs(SyntheticConfig {
        n,
        m: 2,
        blobs: 10,
        seed,
        dim: 16,
    })
    .unwrap();
    data.iter()
        .enumerate()
        .map(|(i, e)| Element::new(offset + i, e.point.to_vec(), e.group))
        .collect()
}

#[test]
#[ignore = "diagnostic, run by hand"]
fn anatomy() {
    let n = 10_000;
    let data = synthetic_blobs(SyntheticConfig {
        n,
        m: 2,
        blobs: 10,
        seed: 1,
        dim: 16,
    })
    .unwrap();
    let config = Sfdm2Config {
        constraint: FairnessConstraint::new(vec![8, 8]).unwrap(),
        epsilon: 0.1,
        bounds: data.sampled_distance_bounds(300, 4.0).unwrap(),
        metric: data.metric(),
    };
    let mut stream = Sfdm2::new(config).unwrap();
    // Round-robin over 2 workers like the bench; model worker 0's half.
    // The burst is the next n/10 arrivals of the *same* stream (one
    // generator run), not a fresh draw with new blob centers.
    let all = elements(n + n / 10, 1, 0);
    for e in all[..n].iter().step_by(2) {
        stream.insert(e);
    }
    let base = stream.snapshot();
    for e in all[n..].iter().step_by(2) {
        stream.insert(e);
    }
    let full = stream.snapshot();
    let full_bytes = full.to_bytes(SnapshotFormat::Binary).len();
    let delta = SnapshotDelta::between(&base, &full).unwrap();
    let delta_bytes = delta.to_bytes().len();
    eprintln!(
        "full {} B, delta {} B ({:.1}%)",
        full_bytes,
        delta_bytes,
        delta_bytes as f64 / full_bytes as f64 * 100.0
    );
    // Per-key contribution: substitute one top-level key at a time.
    let base_obj = base.state.as_object().unwrap();
    let full_obj = full.state.as_object().unwrap();
    for (key, new_value) in full_obj.iter() {
        let old = base_obj.get(key);
        if old == Some(new_value) {
            continue;
        }
        let mut hybrid = Map::new();
        for (k, v) in base_obj.iter() {
            hybrid.insert(
                k.clone(),
                if k == key {
                    new_value.clone()
                } else {
                    v.clone()
                },
            );
        }
        let partial = Snapshot {
            params: full.params.clone(),
            state: Value::Object(hybrid),
        };
        let d = SnapshotDelta::between(&base, &partial).unwrap();
        eprintln!("key `{key}`: delta contribution ~{} B", d.to_bytes().len());
        describe(key, old, new_value);
    }
}

fn describe(key: &str, old: Option<&Value>, new: &Value) {
    match (old, new) {
        (Some(Value::Array(a)), Value::Array(b)) => {
            let changed = a.iter().zip(b).filter(|(x, y)| x != y).count();
            eprintln!(
                "  `{key}`: array {} -> {} items, {changed} changed in common prefix",
                a.len(),
                b.len()
            );
        }
        (Some(Value::Object(_)), Value::Object(m)) => {
            for (k, v) in m.iter() {
                describe(&format!("{key}.{k}"), old.and_then(|o| o.get(k)), v);
            }
        }
        _ => {}
    }
}
