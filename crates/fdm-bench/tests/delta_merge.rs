use fdm_core::point::Element;
use fdm_datasets::synthetic::{synthetic_blobs, SyntheticConfig};
use fdm_serve::protocol::{parse_line, Payload, Request as Cmd};
use fdm_serve::{Engine, ServeConfig};

#[test]
fn blob_workload_rides_deltas() {
    let n = 750;
    let data = synthetic_blobs(SyntheticConfig {
        n,
        m: 2,
        blobs: 10,
        seed: 1,
        dim: 16,
    })
    .unwrap();
    let bounds = data.sampled_distance_bounds(300, 4.0).unwrap();
    let open = format!(
        "OPEN jobs sfdm2 quotas=8,8 eps=0.1 dmin={} dmax={}",
        bounds.lower, bounds.upper
    );
    let engine = Engine::new(ServeConfig::default()).unwrap();
    let (name, spec) = match parse_line(&open).unwrap().unwrap() {
        Cmd::Open { name, spec } => (name, spec),
        other => panic!("{other:?}"),
    };
    engine.open(&name, &spec).unwrap();
    let elements: Vec<Element> = data.iter().collect();
    engine.insert_batch(&name, &elements).unwrap();
    let (epoch, crc) = match engine.merge_since(&name, (0, 0)).unwrap() {
        Payload::MergeSince {
            delta, epoch, crc, ..
        } => {
            assert!(!delta);
            (epoch, crc)
        }
        other => panic!("{other:?}"),
    };
    let burst = synthetic_blobs(SyntheticConfig {
        n: 75,
        m: 2,
        blobs: 10,
        seed: 2,
        dim: 16,
    })
    .unwrap();
    let burst: Vec<Element> = burst
        .iter()
        .enumerate()
        .map(|(i, e)| Element::new(n + i, e.point.to_vec(), e.group))
        .collect();
    engine.insert_batch(&name, &burst).unwrap();
    match engine.merge_since(&name, (epoch, crc)).unwrap() {
        Payload::MergeSince { delta, .. } => assert!(delta, "burst must lower to a delta"),
        other => panic!("{other:?}"),
    }
}
