//! Integration tests of the bench harness itself: determinism of averaged
//! runs, workload/constraint wiring, and CSV artifacts.

use fdm_bench::measure::{run_algorithm, run_averaged, Algo, RunConfig};
use fdm_bench::report::Table;
use fdm_bench::workloads::{SizeMode, Workload};
use fdm_core::fairness::FairnessConstraint;

#[test]
fn runs_are_deterministic_given_seed() {
    let d = Workload::Synthetic { n: 1_000, m: 2 }
        .build(SizeMode::Default, 3)
        .unwrap();
    let c = FairnessConstraint::new(vec![3, 3]).unwrap();
    let cfg = RunConfig {
        constraint: c,
        epsilon: 0.1,
        seed: 5,
        shards: 1,
        window: 0,
        persist: Default::default(),
    };
    let a = run_algorithm(&d, Algo::Sfdm1, &cfg).unwrap();
    let b = run_algorithm(&d, Algo::Sfdm1, &cfg).unwrap();
    assert_eq!(a.diversity, b.diversity);
    assert_eq!(a.stored_elements, b.stored_elements);
}

#[test]
fn different_permutations_change_the_stream() {
    let d = Workload::Synthetic { n: 2_000, m: 2 }
        .build(SizeMode::Default, 3)
        .unwrap();
    let c = FairnessConstraint::new(vec![3, 3]).unwrap();
    let divs: Vec<f64> = (0..4)
        .map(|seed| {
            run_algorithm(
                &d,
                Algo::Sfdm1,
                &RunConfig {
                    constraint: c.clone(),
                    epsilon: 0.1,
                    seed,
                    shards: 1,
                    window: 0,
                    persist: Default::default(),
                },
            )
            .unwrap()
            .diversity
        })
        .collect();
    // Not all permutations should give the identical diversity (the stream
    // order matters for which elements the candidates keep).
    let first = divs[0];
    assert!(
        divs.iter().any(|&x| (x - first).abs() > 1e-12),
        "all permutations identical: {divs:?}"
    );
}

#[test]
fn averaged_diversity_is_within_min_max_of_singles() {
    let d = Workload::Synthetic { n: 1_500, m: 3 }
        .build(SizeMode::Default, 7)
        .unwrap();
    let c = FairnessConstraint::new(vec![2, 2, 2]).unwrap();
    let singles: Vec<f64> = (0..3)
        .map(|seed| {
            run_algorithm(
                &d,
                Algo::Sfdm2,
                &RunConfig {
                    constraint: c.clone(),
                    epsilon: 0.1,
                    seed,
                    shards: 1,
                    window: 0,
                    persist: Default::default(),
                },
            )
            .unwrap()
            .diversity
        })
        .collect();
    let avg = run_averaged(&d, Algo::Sfdm2, &c, 0.1, 3).unwrap().diversity;
    let lo = singles.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = singles.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    assert!(
        avg >= lo - 1e-12 && avg <= hi + 1e-12,
        "avg {avg} outside [{lo}, {hi}]"
    );
}

#[test]
fn workload_epsilon_and_groups_are_consistent() {
    for w in Workload::table2_rows() {
        let d = w.build(SizeMode::Quick, 1).unwrap();
        assert_eq!(d.num_groups(), w.num_groups(), "{}", w.name());
        let eps = w.default_epsilon();
        assert!(eps > 0.0 && eps < 1.0);
        // ER constraint at k=20 (or m if larger) must be feasible on the
        // quick instance.
        let k = 20usize.max(w.num_groups());
        let c = FairnessConstraint::equal_representation(k, w.num_groups()).unwrap();
        c.check_feasible(d.group_sizes()).unwrap();
    }
}

#[test]
fn csv_artifacts_round_trip() {
    let mut t = Table::new(vec!["a", "b"]);
    t.push_row(vec!["1.5", "x,y"]);
    let path = t.write_csv("harness_test_artifact").unwrap();
    let content = std::fs::read_to_string(&path).unwrap();
    assert!(content.starts_with("a,b\n"));
    assert!(content.contains("\"x,y\""));
    std::fs::remove_file(path).unwrap();
}

#[test]
fn gmm_reference_dominates_fair_algorithms() {
    // Table II sanity encoded as a test: the unconstrained GMM reference
    // should (weakly) dominate every fair algorithm on the same instance.
    let d = Workload::Synthetic { n: 2_000, m: 2 }
        .build(SizeMode::Default, 11)
        .unwrap();
    let c = FairnessConstraint::new(vec![10, 10]).unwrap();
    let gmm = run_averaged(&d, Algo::Gmm, &c, 0.1, 1).unwrap().diversity;
    for algo in [Algo::FairSwap, Algo::FairFlow, Algo::Sfdm1, Algo::Sfdm2] {
        let r = run_averaged(&d, algo, &c, 0.1, 2).unwrap();
        assert!(
            r.diversity <= gmm * 1.0 + 1e-9,
            "{algo:?} {} exceeds the unconstrained reference {gmm}",
            r.diversity
        );
    }
}
