//! Offline vendored stand-in for `proptest`.
//!
//! Supports the subset this workspace uses: the [`proptest!`] macro with an
//! optional `#![proptest_config(...)]` header, range / [`Just`] / tuple
//! strategies, `prop_map` / `prop_flat_map` / `prop_filter`,
//! [`collection::vec`], [`prop_oneof!`], and the `prop_assert*` /
//! `prop_assume!` macros.
//!
//! Differences from real proptest: cases are generated from a seed derived
//! deterministically from the test's module path (fully reproducible runs),
//! and failing inputs are **not shrunk** — the failure message prints the
//! generated inputs instead.

#![forbid(unsafe_code)]

use rand::prelude::*;

/// Deterministic generator handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Seeds the generator from a test identifier (FNV-1a hash).
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    /// Access to the underlying generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

/// Error type produced by a failing or rejected property case.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was rejected (e.g. `prop_assume!` failed); it is retried.
    Reject(String),
    /// The property does not hold.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Runner configuration (subset: number of cases).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required per property.
    pub cases: u32,
    /// Maximum rejected cases before the property errors out.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    /// 256 cases, overridable by the `PROPTEST_CASES` environment variable
    /// (like real proptest) so CI can pin a fixed, fast case count.
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.trim().parse::<u32>().ok())
            .filter(|&c| c > 0)
            .unwrap_or(256);
        ProptestConfig {
            cases,
            max_global_rejects: 65_536,
        }
    }
}

impl ProptestConfig {
    /// Configuration with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
    {
        MapStrategy { inner: self, f }
    }

    /// Generates an intermediate value, then a value from the strategy `f`
    /// builds from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMapStrategy<Self, F>
    where
        Self: Sized,
    {
        FlatMapStrategy { inner: self, f }
    }

    /// Retries generation until `pred` holds (up to an internal retry cap).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> FilterStrategy<Self, F>
    where
        Self: Sized,
    {
        FilterStrategy {
            inner: self,
            whence,
            pred,
        }
    }

    /// Boxes the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// Object-safe boxed strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_range_inclusive_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().random_range(self.clone())
            }
        }
    )*};
}

impl_range_inclusive_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

/// See [`Strategy::prop_map`].
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for MapStrategy<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMapStrategy<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct FilterStrategy<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for FilterStrategy<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter `{}` rejected 10000 consecutive values",
            self.whence
        );
    }
}

/// Uniform choice between boxed strategies (backs `prop_oneof!`).
pub struct UnionStrategy<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> UnionStrategy<T> {
    /// Creates a union over the given options (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        UnionStrategy { options }
    }
}

impl<T> Strategy for UnionStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.rng().random_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng as _;

    /// Length specification for [`vec()`]: an exact length or a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.rng().random_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The property-testing entry point. See the crate docs for the supported
/// grammar.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! { cfg = (<$crate::ProptestConfig as ::std::default::Default>::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( cfg = ($cfg:expr); ) => {};
    ( cfg = ($cfg:expr);
      $(#[$meta:meta])*
      fn $name:ident( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut __passed: u32 = 0;
            let mut __rejected: u32 = 0;
            while __passed < __config.cases {
                $( let $arg = $crate::Strategy::generate(&($strat), &mut __rng); )*
                let __inputs = format!(
                    concat!($("\n  ", stringify!($arg), " = {:?}",)* ""),
                    $(&$arg),*
                );
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { { $body } ::std::result::Result::Ok(()) })();
                match __outcome {
                    ::std::result::Result::Ok(()) => { __passed += 1; }
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {
                        __rejected += 1;
                        assert!(
                            __rejected < __config.max_global_rejects,
                            "too many rejected cases in {}",
                            stringify!($name),
                        );
                    }
                    ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                        panic!(
                            "proptest case failed: {}\ninputs (no shrinking):{}",
                            __msg, __inputs,
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                __l,
                __r,
            )));
        }
    }};
}

/// Rejects the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Uniform choice among several strategies with one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::UnionStrategy::new(vec![
            $($crate::Strategy::boxed($strat)),+
        ])
    };
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -2.0f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y), "y = {y}");
        }

        #[test]
        fn combinators_compose(v in crate::collection::vec(0u32..100, 1..20)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn oneof_map_and_assume(x in prop_oneof![Just(1usize), 5usize..8], flag in 0usize..2) {
            prop_assume!(x != 7);
            prop_assert!(x == 1 || (5..7).contains(&x));
            prop_assert_eq!(flag < 2, true);
        }

        #[test]
        fn flat_map_builds_dependent_inputs(
            pair in (1usize..5).prop_flat_map(|n| (Just(n), crate::collection::vec(0usize..10, n)))
        ) {
            let (n, v) = pair;
            prop_assert_eq!(v.len(), n);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case failed")]
    fn failures_panic_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn always_fails(x in 0usize..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }
}
