//! Offline vendored stand-in for `serde`.
//!
//! The build environment has no network access, so this crate provides the
//! small slice of serde this workspace relies on: `#[derive(Serialize,
//! Deserialize)]` (re-exported from the local `serde_derive` proc-macro) and
//! the [`Serialize`] / [`Deserialize`] traits. Instead of serde's visitor
//! architecture, both traits go through an owned JSON-like [`Value`] tree;
//! the sibling `serde_json` stand-in handles text encoding. Field names and
//! enum representations (unit variant → string, newtype variant →
//! single-key object) match real serde's defaults so documents stay
//! readable and stable.

#![forbid(unsafe_code)]

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// Insertion-ordered string-keyed map used for JSON objects.
///
/// Generic parameters exist only for source compatibility with
/// `serde_json::Map<String, Value>`; the implementation is specialized to
/// string keys.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map<K = String, V = Value> {
    entries: Vec<(K, V)>,
}

impl Map<String, Value> {
    /// Creates an empty map.
    pub fn new() -> Self {
        Map {
            entries: Vec::new(),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts a key/value pair, replacing any previous value for the key.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            return Some(std::mem::replace(&mut slot.1, value));
        }
        self.entries.push((key, value));
        None
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Whether the key is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl FromIterator<(String, Value)> for Map<String, Value> {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut map = Map::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

/// An owned JSON-like value tree (stand-in for `serde_json::Value`).
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// JSON `null`.
    #[default]
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (stored as `f64`; integers up to 2^53 round-trip).
    Number(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object (insertion-ordered).
    Object(Map<String, Value>),
}

impl Value {
    /// String view, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Unsigned integer view, if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// Signed integer view, if this is an integral number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 => Some(*n as i64),
            _ => None,
        }
    }

    /// Boolean view, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array view, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Object view, if this is an object.
    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object-field access; `Value::Null` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<i32> for Value {
    fn eq(&self, other: &i32) -> bool {
        self.as_f64() == Some(f64::from(*other))
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

macro_rules! impl_value_from_num {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Number(v as f64)
            }
        }
    )*};
}

impl_value_from_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Value {
        Value::String(v.clone())
    }
}

/// Deserialization error: a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Creates an error from any message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        DeError(msg.to_string())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Serialization into the [`Value`] tree.
pub trait Serialize {
    /// Converts `self` to a value tree.
    fn to_value(&self) -> Value;
}

/// Deserialization from the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a value tree.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

macro_rules! impl_serde_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Number(n) => Ok(*n as $t),
                    other => Err(DeError::custom(format!(
                        "expected number, found {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_serde_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_bool()
            .ok_or_else(|| DeError::custom("expected boolean"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_array()
            .ok_or_else(|| DeError::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

impl Serialize for Map<String, Value> {
    fn to_value(&self) -> Value {
        Value::Object(self.clone())
    }
}

impl Deserialize for Map<String, Value> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_object()
            .cloned()
            .ok_or_else(|| DeError::custom("expected object"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_insertion_order_and_replaces() {
        let mut m = Map::new();
        m.insert("b".into(), Value::from(1));
        m.insert("a".into(), Value::from(2));
        m.insert("b".into(), Value::from(3));
        let keys: Vec<&String> = m.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, ["b", "a"]);
        assert_eq!(m.get("b"), Some(&Value::Number(3.0)));
    }

    #[test]
    fn value_indexing_and_comparisons() {
        let v = Value::Array(vec![Value::from("x"), Value::from(2.5)]);
        assert_eq!(v[0], "x");
        assert_eq!(v[1], 2.5);
        assert!(v[7].is_null());
    }

    #[test]
    fn primitive_round_trips() {
        for n in [0usize, 1, 42, 1 << 40] {
            assert_eq!(usize::from_value(&n.to_value()).unwrap(), n);
        }
        assert_eq!(f64::from_value(&1.25f64.to_value()).unwrap(), 1.25);
        let v: Vec<usize> = vec![1, 2, 3];
        assert_eq!(Vec::<usize>::from_value(&v.to_value()).unwrap(), v);
    }
}
