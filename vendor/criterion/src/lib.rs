//! Offline vendored stand-in for `criterion`.
//!
//! Implements the subset of the criterion 0.5 API this workspace's benches
//! use: `criterion_group!` / `criterion_main!`, [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`] / `bench_function`, [`Throughput`],
//! and [`BenchmarkId`]. Measurement is a simple warmup + fixed number of
//! timed samples (median reported); statistical analysis, outlier detection,
//! and HTML reports are out of scope.
//!
//! Extra behavior for CI: when the `CRITERION_OUTPUT_JSON` environment
//! variable names a file, every finished benchmark appends a record
//! `{id, median_ns, mean_ns, throughput_elems_per_s?}` to a JSON array in
//! that file — the workspace's `BENCH_*.json` perf artifacts.
//! A positional command-line argument acts as a substring filter on
//! benchmark ids (flags starting with `-` are ignored for cargo-bench
//! compatibility).

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Creates an id from a parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

/// One measured benchmark, as recorded into the JSON artifact.
#[derive(Debug, Clone)]
pub struct Record {
    /// Full id (`group/function/param`).
    pub id: String,
    /// Median wall-clock nanoseconds per iteration.
    pub median_ns: f64,
    /// Mean wall-clock nanoseconds per iteration.
    pub mean_ns: f64,
    /// Elements per second, when the group declared element throughput.
    pub throughput_elems_per_s: Option<f64>,
}

/// The benchmark manager (stand-in for `criterion::Criterion`).
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    warmup: Duration,
    target_sample_time: Duration,
    filter: Option<String>,
    records: Vec<Record>,
}

impl Default for Criterion {
    fn default() -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        // FDM_BENCH_FAST=1 shrinks the measurement for CI smoke runs.
        let fast = std::env::var("FDM_BENCH_FAST")
            .map(|v| v == "1")
            .unwrap_or(false);
        Criterion {
            sample_size: if fast { 5 } else { 20 },
            warmup: if fast {
                Duration::from_millis(20)
            } else {
                Duration::from_millis(200)
            },
            target_sample_time: if fast {
                Duration::from_millis(10)
            } else {
                Duration::from_millis(50)
            },
            filter,
            records: Vec::new(),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the warmup duration.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warmup = d;
        self
    }

    /// Sets the per-sample measurement target.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.target_sample_time = d;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        self.run_one(id.to_string(), None, &mut f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &mut self,
        id: String,
        throughput: Option<Throughput>,
        f: &mut F,
    ) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            warmup: self.warmup,
            target_sample_time: self.target_sample_time,
            samples_ns: Vec::new(),
        };
        f(&mut bencher);
        let mut samples = bencher.samples_ns;
        if samples.is_empty() {
            return;
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median_ns = samples[samples.len() / 2];
        let mean_ns = samples.iter().sum::<f64>() / samples.len() as f64;
        let throughput_elems_per_s = match throughput {
            Some(Throughput::Elements(n)) => Some(n as f64 / (median_ns * 1e-9)),
            _ => None,
        };
        let record = Record {
            id,
            median_ns,
            mean_ns,
            throughput_elems_per_s,
        };
        print_record(&record);
        self.records.push(record);
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.3} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.3} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn print_record(r: &Record) {
    match r.throughput_elems_per_s {
        Some(t) => println!(
            "{:<48} time: {:>12}/iter   thrpt: {:.3} Melem/s",
            r.id,
            fmt_ns(r.median_ns),
            t / 1e6
        ),
        None => println!("{:<48} time: {:>12}/iter", r.id, fmt_ns(r.median_ns)),
    }
}

impl Drop for Criterion {
    fn drop(&mut self) {
        let Ok(path) = std::env::var("CRITERION_OUTPUT_JSON") else {
            return;
        };
        if path.is_empty() || self.records.is_empty() {
            return;
        }
        let mut all: Vec<serde_json::Value> = std::fs::read_to_string(&path)
            .ok()
            .and_then(|text| serde_json::from_str::<serde_json::Value>(&text).ok())
            .and_then(|v| v.as_array().cloned())
            .unwrap_or_default();
        for r in &self.records {
            let mut obj = serde_json::Map::new();
            obj.insert("id".to_string(), serde_json::Value::from(r.id.as_str()));
            obj.insert(
                "median_ns".to_string(),
                serde_json::Value::from(r.median_ns),
            );
            obj.insert("mean_ns".to_string(), serde_json::Value::from(r.mean_ns));
            if let Some(t) = r.throughput_elems_per_s {
                obj.insert(
                    "throughput_elems_per_s".to_string(),
                    serde_json::Value::from(t),
                );
            }
            all.push(serde_json::Value::Object(obj));
        }
        if let Ok(text) = serde_json::to_string_pretty(&all) {
            let _ = std::fs::write(&path, text);
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    /// Benchmarks `f` with the given input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.text);
        let throughput = self.throughput;
        self.criterion
            .run_one(full, throughput, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Benchmarks `f` with no explicit input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        let throughput = self.throughput;
        self.criterion.run_one(full, throughput, &mut f);
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Times closures (stand-in for `criterion::Bencher`).
pub struct Bencher {
    sample_size: usize,
    warmup: Duration,
    target_sample_time: Duration,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Measures `routine`: warmup to estimate cost, then `sample_size`
    /// timed samples of adaptively many iterations each.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup + cost estimate.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warmup || warm_iters < 3 {
            std::hint::black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let est_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters as f64).max(1.0);
        let iters_per_sample =
            ((self.target_sample_time.as_nanos() as f64 / est_ns).ceil() as u64).max(1);
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            self.samples_ns
                .push(start.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
    }

    /// Measures `routine` with caller-controlled timing (upstream
    /// `iter_custom`): each call does one sample's worth of work for the
    /// given iteration count and returns the elapsed time the caller
    /// wants recorded. This is the hook for benchmarks whose per-sample
    /// statistic is not plain wall clock — e.g. a tail percentile over a
    /// batch of operations. One untimed call warms up; each subsequent
    /// call contributes one sample (returned nanoseconds / iters).
    pub fn iter_custom<R: FnMut(u64) -> Duration>(&mut self, mut routine: R) {
        std::hint::black_box(routine(1));
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let elapsed = routine(1);
            self.samples_ns.push(elapsed.as_nanos() as f64);
        }
    }
}

/// Defines a benchmark group function, in both criterion forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Defines `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn work(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::new("n", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn measures_and_records() {
        let mut c = Criterion {
            sample_size: 3,
            warmup: Duration::from_millis(1),
            target_sample_time: Duration::from_millis(1),
            filter: None,
            records: Vec::new(),
        };
        work(&mut c);
        assert_eq!(c.records.len(), 1);
        let r = &c.records[0];
        assert_eq!(r.id, "g/n/100");
        assert!(r.median_ns > 0.0);
        assert!(r.throughput_elems_per_s.unwrap() > 0.0);
        c.records.clear(); // avoid JSON writing in Drop during tests
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            sample_size: 2,
            warmup: Duration::from_millis(1),
            target_sample_time: Duration::from_millis(1),
            filter: Some("nomatch".to_string()),
            records: Vec::new(),
        };
        work(&mut c);
        assert!(c.records.is_empty());
    }
}
