//! A persistent work-stealing thread pool.
//!
//! PR 1's scoped-spawn model paid thread creation and teardown on every
//! parallel call — cheap enough for one-shot batch jobs, but the streaming
//! guess ladder issues thousands of small parallel rounds per stream, and
//! the setup cost ate the multi-core win. This module keeps one
//! lazily-initialized pool for the process lifetime:
//!
//! * a global **injector** queue that external callers push batches into;
//! * one **local deque** per worker: tasks spawned from a worker (nested
//!   `join`) push there LIFO, and idle workers **steal** FIFO from the
//!   other ends, so imbalanced batches rebalance themselves;
//! * callers submitting a batch **help** run tasks while they wait, so a
//!   single-worker pool (or a pool saturated by another batch) can never
//!   deadlock a nested submission.
//!
//! Scoped borrows on a persistent pool require one carefully fenced
//! lifetime erasure (`erase_job`): a batch's tasks may borrow the
//! submitter's stack because [`ThreadPool::run_scoped`] does not return
//! until every task has finished running (panics included — they are
//! caught, counted, and re-thrown on the submitting thread).
//!
//! Pool initialization is fallible by design: if worker threads cannot be
//! spawned (or only one hardware thread exists), [`global`] yields `None`
//! and every caller falls back to inline execution.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// A unit of pool work. Tasks are erased to `'static` by the scoped entry
/// points, which guarantee completion before the true lifetime ends.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// State shared between the workers, the queues, and submitting threads.
struct Shared {
    /// Global FIFO that external submissions enter through.
    injector: Mutex<VecDeque<Job>>,
    /// One deque per worker: owner pushes/pops the back, thieves pop the
    /// front.
    locals: Vec<Mutex<VecDeque<Job>>>,
    /// Guards the sleep protocol; `sleepers` counts parked workers.
    sleep: Mutex<usize>,
    /// Workers park here when no runnable job exists anywhere.
    wake: Condvar,
    /// Set once on pool drop; workers exit after draining.
    shutdown: AtomicBool,
}

impl Shared {
    /// Pops a runnable job: own deque first (LIFO), then the injector,
    /// then stealing (FIFO) from the other workers, scanning from a
    /// position derived from the caller so thieves spread out.
    fn find_job(&self, worker: Option<usize>) -> Option<Job> {
        if let Some(w) = worker {
            if let Some(job) = self.locals[w].lock().unwrap().pop_back() {
                return Some(job);
            }
        }
        if let Some(job) = self.injector.lock().unwrap().pop_front() {
            return Some(job);
        }
        let n = self.locals.len();
        let start = worker.map_or(0, |w| w + 1);
        for i in 0..n {
            let victim = (start + i) % n;
            if Some(victim) == worker {
                continue;
            }
            if let Some(job) = self.locals[victim].lock().unwrap().pop_front() {
                return Some(job);
            }
        }
        None
    }

    /// Enqueues one job from the current thread: a worker spawns onto its
    /// own deque (stealable from the far end), anyone else goes through
    /// the injector. Wakes one sleeper per job — a batch of N pushes
    /// therefore wakes up to N workers, one each.
    fn push_job(&self, job: Job) {
        match current_worker() {
            Some(w) if w < self.locals.len() => self.locals[w].lock().unwrap().push_back(job),
            _ => self.injector.lock().unwrap().push_back(job),
        }
        self.notify();
    }

    /// Wakes one parked worker, if any.
    fn notify(&self) {
        let sleepers = self.sleep.lock().unwrap();
        if *sleepers > 0 {
            drop(sleepers);
            self.wake.notify_one();
        }
    }
}

thread_local! {
    /// Index of the pool worker running on this thread, if any.
    static WORKER_INDEX: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

fn current_worker() -> Option<usize> {
    WORKER_INDEX.with(|w| w.get())
}

/// Tracks one scoped batch: tasks remaining and the first caught panic.
struct Batch {
    state: Mutex<BatchState>,
    done: Condvar,
}

struct BatchState {
    remaining: usize,
    panic: Option<Box<dyn std::any::Any + Send>>,
}

impl Batch {
    fn new(tasks: usize) -> Arc<Batch> {
        Arc::new(Batch {
            state: Mutex::new(BatchState {
                remaining: tasks,
                panic: None,
            }),
            done: Condvar::new(),
        })
    }

    /// Records one finished task (and its panic payload, if first).
    fn complete(&self, panic: Option<Box<dyn std::any::Any + Send>>) {
        let mut state = self.state.lock().unwrap();
        state.remaining -= 1;
        if state.panic.is_none() {
            state.panic = panic;
        }
        if state.remaining == 0 {
            self.done.notify_all();
        }
    }
}

/// Erases a scoped job to `'static`.
///
/// # Safety
///
/// The caller must not return (or otherwise invalidate the borrows captured
/// by `job`) until the job has finished executing. `run_scoped` upholds this
/// by blocking on the batch latch, which is decremented only after the job
/// returns or panics.
#[allow(unsafe_code)]
fn erase_job<'scope>(job: Box<dyn FnOnce() + Send + 'scope>) -> Job {
    // SAFETY: see above; completion-before-return is enforced by the
    // Batch latch in `run_scoped`, including on panic (catch_unwind).
    unsafe {
        std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Box<dyn FnOnce() + Send + 'static>>(
            job,
        )
    }
}

/// The persistent pool. See the module docs.
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawns a pool with `threads` workers (at least 1). Fails if any
    /// worker thread cannot be created; already-spawned workers are torn
    /// down before the error is returned.
    pub fn new(threads: usize) -> std::io::Result<ThreadPool> {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            injector: Mutex::new(VecDeque::new()),
            locals: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            sleep: Mutex::new(0),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let mut workers = Vec::with_capacity(threads);
        for index in 0..threads {
            let worker_shared = Arc::clone(&shared);
            let spawned = std::thread::Builder::new()
                .name(format!("fdm-rayon-{index}"))
                .spawn(move || worker_loop(&worker_shared, index));
            match spawned {
                Ok(handle) => workers.push(handle),
                Err(e) => {
                    shared.shutdown.store(true, Ordering::SeqCst);
                    shared.wake.notify_all();
                    for handle in workers {
                        let _ = handle.join();
                    }
                    return Err(e);
                }
            }
        }
        Ok(ThreadPool { shared, workers })
    }

    /// Number of worker threads.
    pub fn num_threads(&self) -> usize {
        self.workers.len()
    }

    /// Runs every task to completion on the pool, helping from the calling
    /// thread while waiting. Tasks may borrow from the caller's stack.
    /// The first panicking task's payload is re-thrown here after the
    /// whole batch has finished.
    pub fn run_scoped<'scope>(&self, tasks: Vec<Box<dyn FnOnce() + Send + 'scope>>) {
        self.run_scoped_with(tasks, || {});
    }

    /// Like [`ThreadPool::run_scoped`], but runs `main` on the calling
    /// thread after submitting the tasks and before helping/waiting — the
    /// building block of `join` (submit `b`, run `a` inline). The batch is
    /// always drained before returning, even if `main` panics, so scoped
    /// borrows stay valid.
    pub fn run_scoped_with<'scope, M: FnOnce()>(
        &self,
        tasks: Vec<Box<dyn FnOnce() + Send + 'scope>>,
        main: M,
    ) {
        if tasks.is_empty() {
            main();
            return;
        }
        let batch = Batch::new(tasks.len());
        for task in tasks {
            let batch = Arc::clone(&batch);
            self.shared.push_job(erase_job(Box::new(move || {
                let result = catch_unwind(AssertUnwindSafe(task));
                batch.complete(result.err());
            })));
        }
        let main_result = catch_unwind(AssertUnwindSafe(main));
        self.wait_for(&batch);
        if let Err(payload) = main_result {
            resume_unwind(payload);
        }
    }

    /// Helps run pool jobs until the batch completes, then re-throws its
    /// first panic (if any).
    fn wait_for(&self, batch: &Batch) {
        loop {
            if batch.state.lock().unwrap().remaining == 0 {
                break;
            }
            if let Some(job) = self.shared.find_job(current_worker()) {
                job();
                continue;
            }
            let state = batch.state.lock().unwrap();
            if state.remaining == 0 {
                break;
            }
            // Short timeout: new stealable jobs give no batch notification,
            // so wake periodically to help with them.
            let _ = batch
                .done
                .wait_timeout(state, Duration::from_micros(200))
                .unwrap();
        }
        let panic = batch.state.lock().unwrap().panic.take();
        if let Some(payload) = panic {
            resume_unwind(payload);
        }
    }
}

fn worker_loop(shared: &Shared, index: usize) {
    WORKER_INDEX.with(|w| w.set(Some(index)));
    loop {
        if let Some(job) = shared.find_job(Some(index)) {
            job();
            continue;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let sleepers = shared.sleep.lock().unwrap();
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        // Re-scan with the sleep lock held: a pusher notifies under this
        // lock, so a job pushed between the failed scan above and here is
        // either found now, or its notify happens after we register as a
        // sleeper and wakes us. (Pushers never hold a queue lock while
        // taking the sleep lock, so scanning under it cannot deadlock.)
        if let Some(job) = shared.find_job(Some(index)) {
            drop(sleepers);
            job();
            continue;
        }
        let mut sleepers = sleepers;
        *sleepers += 1;
        let (mut sleepers_after, _) = shared
            .wake
            .wait_timeout(sleepers, Duration::from_millis(10))
            .unwrap();
        *sleepers_after -= 1;
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.wake.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// The process-wide pool, created on first use. `None` when only one
/// hardware thread is available, when `RAYON_NUM_THREADS=1`/`0`, or when
/// worker spawning failed — callers then execute inline.
pub fn global() -> Option<&'static ThreadPool> {
    static GLOBAL: OnceLock<Option<ThreadPool>> = OnceLock::new();
    GLOBAL
        .get_or_init(|| {
            let threads = configured_threads();
            if threads <= 1 {
                return None;
            }
            ThreadPool::new(threads).ok()
        })
        .as_ref()
}

/// Worker count for the global pool: `RAYON_NUM_THREADS` when set and
/// valid, otherwise the hardware parallelism.
fn configured_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n;
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}
