//! Offline vendored stand-in for `rayon`.
//!
//! Provides the narrow parallel-iterator surface this workspace uses —
//! `par_iter()` / `par_iter_mut()` on slices, `into_par_iter()` on ranges
//! and vectors, with `map` / `for_each` / `collect`, plus `join` — executed
//! on a lazily-initialized persistent work-stealing pool ([`pool`]). Earlier
//! revisions spawned scoped threads per call; the pool removes that per-call
//! setup cost, which dominated the fine-grained parallel rounds of the
//! streaming guess ladder. Results preserve input order, so `collect` is
//! deterministic regardless of scheduling, and every entry point falls back
//! to inline execution when the pool is unavailable (single hardware
//! thread, `RAYON_NUM_THREADS=1`, or worker spawn failure).

#![deny(unsafe_code)]

pub mod pool;

/// Number of worker threads used for parallel operations (1 when running
/// inline without a pool).
pub fn current_num_threads() -> usize {
    pool::global().map_or(1, pool::ThreadPool::num_threads)
}

/// Runs two closures, potentially in parallel, returning both results.
///
/// On the pool, `b` is spawned onto the current worker's deque (stealable
/// by idle workers) while `a` runs inline; the caller helps execute pool
/// jobs until `b` finishes. Without a pool both run inline.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let Some(pool) = pool::global() else {
        let ra = a();
        let rb = b();
        return (ra, rb);
    };
    let slot_b: std::sync::Mutex<Option<RB>> = std::sync::Mutex::new(None);
    let mut ra: Option<RA> = None;
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = vec![Box::new(|| {
        *slot_b.lock().unwrap() = Some(b());
    })];
    // Run `a` on this thread while the batch executes; `run_scoped` then
    // helps with (and waits for) `b`.
    let a_holder = &mut ra;
    pool.run_scoped_with(tasks, move || *a_holder = Some(a()));
    (
        ra.expect("join: `a` ran on the calling thread"),
        slot_b
            .into_inner()
            .unwrap()
            .expect("join: `b` completed before run_scoped returned"),
    )
}

fn par_map_indexed<I, O, F>(items: Vec<I>, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let Some(pool) = pool::global() else {
        return items.into_iter().map(f).collect();
    };
    let threads = pool.num_threads();
    if threads <= 1 || n < 2 {
        return items.into_iter().map(f).collect();
    }
    // More chunks than workers so the stealing deques can rebalance
    // non-uniform per-item costs; capped so tiny inputs stay cheap.
    let chunks = (threads * 4).min(n);
    let chunk = n.div_ceil(chunks);
    let mut results: Vec<Option<O>> = Vec::with_capacity(n);
    results.resize_with(n, || None);
    // Move items into an option buffer so chunks can take ownership.
    let mut item_buf: Vec<Option<I>> = items.into_iter().map(Some).collect();
    {
        let mut item_tail: &mut [Option<I>] = &mut item_buf;
        let mut result_tail: &mut [Option<O>] = &mut results;
        let f = &f;
        let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(chunks);
        while !item_tail.is_empty() {
            let take = chunk.min(item_tail.len());
            let (item_head, rest_items) = item_tail.split_at_mut(take);
            let (result_head, rest_results) = result_tail.split_at_mut(take);
            item_tail = rest_items;
            result_tail = rest_results;
            tasks.push(Box::new(move || {
                for (slot, item) in result_head.iter_mut().zip(item_head.iter_mut()) {
                    *slot = Some(f(item.take().expect("item taken twice")));
                }
            }));
        }
        pool.run_scoped(tasks);
    }
    results
        .into_iter()
        .map(|o| o.expect("worker filled every slot"))
        .collect()
}

/// A materialized parallel iterator (order-preserving).
pub struct ParIter<I> {
    items: Vec<I>,
}

impl<I: Send> ParIter<I> {
    /// Maps each item through `f` in parallel.
    pub fn map<O: Send, F: Fn(I) -> O + Sync>(self, f: F) -> ParMapped<O> {
        ParMapped {
            items: par_map_indexed(self.items, f),
        }
    }

    /// Applies `f` to each item in parallel.
    pub fn for_each<F: Fn(I) + Sync>(self, f: F) {
        par_map_indexed(self.items, f);
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether there are no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// The result of a parallel `map`, ready to collect.
pub struct ParMapped<O> {
    items: Vec<O>,
}

impl<O: Send> ParMapped<O> {
    /// Collects the mapped results (input order preserved).
    pub fn collect<C: FromIterator<O>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Further maps the results in parallel.
    pub fn map<P: Send, F: Fn(O) -> P + Sync>(self, f: F) -> ParMapped<P> {
        ParMapped {
            items: par_map_indexed(self.items, f),
        }
    }

    /// Applies `f` to each result in parallel.
    pub fn for_each<F: Fn(O) + Sync>(self, f: F) {
        par_map_indexed(self.items, f);
    }
}

/// Conversion into an owning parallel iterator.
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;

    /// Builds the parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;

    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// `par_iter()` on borrowed collections.
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed item type.
    type Item: Send + 'a;

    /// Builds a parallel iterator over references.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// `par_iter_mut()` on borrowed collections.
pub trait IntoParallelRefMutIterator<'a> {
    /// Mutably borrowed item type.
    type Item: Send + 'a;

    /// Builds a parallel iterator over mutable references.
    fn par_iter_mut(&'a mut self) -> ParIter<Self::Item>;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = &'a mut T;

    fn par_iter_mut(&'a mut self) -> ParIter<&'a mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = &'a mut T;

    fn par_iter_mut(&'a mut self) -> ParIter<&'a mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }
}

/// Common imports, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator};
}

#[cfg(test)]
mod tests {
    use super::pool::ThreadPool;
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    #[test]
    fn map_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = v.into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn range_map_collect() {
        let squares: Vec<usize> = (0..257).into_par_iter().map(|x| x * x).collect();
        assert_eq!(squares[16], 256);
        assert_eq!(squares.len(), 257);
    }

    #[test]
    fn par_iter_mut_mutates_in_place() {
        let mut v: Vec<usize> = (0..100).collect();
        v.par_iter_mut().for_each(|x| *x += 1);
        assert_eq!(v, (1..101).collect::<Vec<_>>());
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn empty_inputs() {
        let v: Vec<usize> = Vec::new();
        let out: Vec<usize> = v.into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn pool_runs_scoped_borrowing_tasks() {
        let pool = ThreadPool::new(4).unwrap();
        let counter = AtomicUsize::new(0);
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..64)
            .map(|i| {
                let counter = &counter;
                Box::new(move || {
                    counter.fetch_add(i, Ordering::SeqCst);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run_scoped(tasks);
        assert_eq!(counter.load(Ordering::SeqCst), (0..64).sum());
    }

    #[test]
    fn pool_is_reused_across_batches() {
        // The same worker threads serve every batch: collect the set of
        // thread ids over many rounds and check it stays within pool size.
        let pool = ThreadPool::new(3).unwrap();
        let seen = Mutex::new(std::collections::HashSet::new());
        for _ in 0..20 {
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..6)
                .map(|_| {
                    let seen = &seen;
                    Box::new(move || {
                        seen.lock().unwrap().insert(std::thread::current().id());
                        std::thread::sleep(std::time::Duration::from_micros(100));
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.run_scoped(tasks);
        }
        // 3 workers + the helping caller.
        assert!(seen.lock().unwrap().len() <= 4);
    }

    #[test]
    fn unbalanced_tasks_complete() {
        // One long task plus many short ones: stealing (or helping) must
        // finish the short tail while the long task runs.
        let pool = ThreadPool::new(2).unwrap();
        let done = AtomicUsize::new(0);
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..32)
            .map(|i| {
                let done = &done;
                Box::new(move || {
                    if i == 0 {
                        std::thread::sleep(std::time::Duration::from_millis(20));
                    }
                    done.fetch_add(1, Ordering::SeqCst);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run_scoped(tasks);
        assert_eq!(done.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn panics_propagate_after_batch_completes() {
        let pool = ThreadPool::new(2).unwrap();
        let completed = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..8)
                .map(|i| {
                    let completed = &completed;
                    Box::new(move || {
                        if i == 3 {
                            panic!("boom");
                        }
                        completed.fetch_add(1, Ordering::SeqCst);
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.run_scoped(tasks);
        }));
        assert!(result.is_err(), "the task panic must surface");
        // Every non-panicking task still ran: the batch drains fully even
        // when one member dies.
        assert_eq!(completed.load(Ordering::SeqCst), 7);
    }

    #[test]
    fn single_worker_pool_cannot_deadlock() {
        let pool = ThreadPool::new(1).unwrap();
        let hits = AtomicUsize::new(0);
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..16)
            .map(|_| {
                let hits = &hits;
                Box::new(move || {
                    hits.fetch_add(1, Ordering::SeqCst);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run_scoped(tasks);
        assert_eq!(hits.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn nested_batches_use_local_deques() {
        // Tasks submitting sub-batches from worker threads push onto the
        // worker's own deque; the worker helps (and thieves steal) until
        // everything drains — no deadlock, full completion.
        let pool = ThreadPool::new(3).unwrap();
        let total = AtomicUsize::new(0);
        let outer: Vec<Box<dyn FnOnce() + Send + '_>> = (0..6)
            .map(|_| {
                let (pool, total) = (&pool, &total);
                Box::new(move || {
                    let inner: Vec<Box<dyn FnOnce() + Send + '_>> = (0..8)
                        .map(|_| {
                            Box::new(move || {
                                total.fetch_add(1, Ordering::SeqCst);
                            }) as Box<dyn FnOnce() + Send + '_>
                        })
                        .collect();
                    pool.run_scoped(inner);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run_scoped(outer);
        assert_eq!(total.load(Ordering::SeqCst), 48);
    }

    #[test]
    fn dropping_a_pool_joins_workers() {
        let pool = ThreadPool::new(2).unwrap();
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = vec![Box::new(|| {})];
        pool.run_scoped(tasks);
        drop(pool); // must not hang
    }

    #[test]
    fn global_fallback_is_inline_when_single_threaded() {
        // Whatever the box, current_num_threads() is consistent with the
        // global pool's availability.
        let n = super::current_num_threads();
        match super::pool::global() {
            Some(pool) => assert_eq!(n, pool.num_threads()),
            None => assert_eq!(n, 1),
        }
    }
}
