//! Offline vendored stand-in for `rayon`.
//!
//! Provides the narrow parallel-iterator surface this workspace uses —
//! `par_iter()` / `par_iter_mut()` on slices, `into_par_iter()` on ranges
//! and vectors, with `map` / `for_each` / `collect` — implemented with
//! `std::thread::scope` over contiguous chunks. Results preserve input
//! order, so `collect` is deterministic regardless of scheduling. There is
//! no work stealing; items are split eagerly into one chunk per available
//! core, which fits this workspace's uniform per-item workloads.

#![forbid(unsafe_code)]

use std::num::NonZeroUsize;

/// Number of worker threads used for parallel operations.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon-stub join worker panicked"))
    })
}

fn par_map_indexed<I, O, F>(items: Vec<I>, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = current_num_threads().min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut results: Vec<Option<O>> = Vec::with_capacity(n);
    results.resize_with(n, || None);
    // Move items into an option buffer so chunks can take ownership.
    let mut item_buf: Vec<Option<I>> = items.into_iter().map(Some).collect();
    std::thread::scope(|scope| {
        let mut item_tail: &mut [Option<I>] = &mut item_buf;
        let mut result_tail: &mut [Option<O>] = &mut results;
        let f = &f;
        let mut handles = Vec::new();
        while !item_tail.is_empty() {
            let take = chunk.min(item_tail.len());
            let (item_head, rest_items) = item_tail.split_at_mut(take);
            let (result_head, rest_results) = result_tail.split_at_mut(take);
            item_tail = rest_items;
            result_tail = rest_results;
            handles.push(scope.spawn(move || {
                for (slot, item) in result_head.iter_mut().zip(item_head.iter_mut()) {
                    *slot = Some(f(item.take().expect("item taken twice")));
                }
            }));
        }
        for h in handles {
            h.join().expect("rayon-stub worker panicked");
        }
    });
    results
        .into_iter()
        .map(|o| o.expect("worker filled every slot"))
        .collect()
}

/// A materialized parallel iterator (order-preserving).
pub struct ParIter<I> {
    items: Vec<I>,
}

impl<I: Send> ParIter<I> {
    /// Maps each item through `f` in parallel.
    pub fn map<O: Send, F: Fn(I) -> O + Sync>(self, f: F) -> ParMapped<O> {
        ParMapped {
            items: par_map_indexed(self.items, f),
        }
    }

    /// Applies `f` to each item in parallel.
    pub fn for_each<F: Fn(I) + Sync>(self, f: F) {
        par_map_indexed(self.items, f);
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether there are no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// The result of a parallel `map`, ready to collect.
pub struct ParMapped<O> {
    items: Vec<O>,
}

impl<O: Send> ParMapped<O> {
    /// Collects the mapped results (input order preserved).
    pub fn collect<C: FromIterator<O>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Further maps the results in parallel.
    pub fn map<P: Send, F: Fn(O) -> P + Sync>(self, f: F) -> ParMapped<P> {
        ParMapped {
            items: par_map_indexed(self.items, f),
        }
    }

    /// Applies `f` to each result in parallel.
    pub fn for_each<F: Fn(O) + Sync>(self, f: F) {
        par_map_indexed(self.items, f);
    }
}

/// Conversion into an owning parallel iterator.
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;

    /// Builds the parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;

    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// `par_iter()` on borrowed collections.
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed item type.
    type Item: Send + 'a;

    /// Builds a parallel iterator over references.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// `par_iter_mut()` on borrowed collections.
pub trait IntoParallelRefMutIterator<'a> {
    /// Mutably borrowed item type.
    type Item: Send + 'a;

    /// Builds a parallel iterator over mutable references.
    fn par_iter_mut(&'a mut self) -> ParIter<Self::Item>;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = &'a mut T;

    fn par_iter_mut(&'a mut self) -> ParIter<&'a mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = &'a mut T;

    fn par_iter_mut(&'a mut self) -> ParIter<&'a mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }
}

/// Common imports, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = v.into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn range_map_collect() {
        let squares: Vec<usize> = (0..257).into_par_iter().map(|x| x * x).collect();
        assert_eq!(squares[16], 256);
        assert_eq!(squares.len(), 257);
    }

    #[test]
    fn par_iter_mut_mutates_in_place() {
        let mut v: Vec<usize> = (0..100).collect();
        v.par_iter_mut().for_each(|x| *x += 1);
        assert_eq!(v, (1..101).collect::<Vec<_>>());
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn empty_inputs() {
        let v: Vec<usize> = Vec::new();
        let out: Vec<usize> = v.into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }
}
