//! Offline vendored `#[derive(Serialize, Deserialize)]` for the local
//! `serde` stand-in.
//!
//! Implemented without `syn`/`quote` (neither is available offline): the
//! input token stream is walked directly. Supported shapes — exactly what
//! this workspace derives on:
//!
//! * structs with named fields (no generics);
//! * enums whose variants are unit or single-field newtype (no generics).
//!
//! Representation matches serde's default externally-tagged form: structs →
//! objects keyed by field name, unit variants → the variant name as a
//! string, newtype variants → `{"Variant": inner}`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Item {
    Struct {
        name: String,
        fields: Vec<String>,
    },
    Enum {
        name: String,
        variants: Vec<(String, bool)>,
    }, // (name, is_newtype)
}

/// Collects the trees, dropping outer attributes (`#[...]` / `#![...]`).
fn significant_trees(input: TokenStream) -> Vec<TokenTree> {
    let mut out = Vec::new();
    let mut iter = input.into_iter().peekable();
    while let Some(tt) = iter.next() {
        if let TokenTree::Punct(p) = &tt {
            if p.as_char() == '#' {
                // Skip `#[...]` and `#![...]`.
                if let Some(TokenTree::Punct(bang)) = iter.peek() {
                    if bang.as_char() == '!' {
                        iter.next();
                    }
                }
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Bracket {
                        iter.next();
                        continue;
                    }
                }
                continue;
            }
        }
        out.push(tt);
    }
    out
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let trees = significant_trees(input);
    let mut i = 0;
    // Skip visibility: `pub` optionally followed by `(...)`.
    if matches!(&trees.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        i += 1;
        if matches!(&trees.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }
    let kind = match &trees.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;
    let name = match &trees.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    i += 1;
    if matches!(&trees.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "vendored serde_derive does not support generic type `{name}`"
        ));
    }
    let body = match &trees.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => {
            return Err(format!(
                "expected braced body for `{name}`, found {other:?}"
            ))
        }
    };
    match kind.as_str() {
        "struct" => Ok(Item::Struct {
            name,
            fields: parse_named_fields(body)?,
        }),
        "enum" => Ok(Item::Enum {
            name,
            variants: parse_variants(body)?,
        }),
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let trees = significant_trees(body);
    let mut fields = Vec::new();
    let mut i = 0;
    while i < trees.len() {
        // Optional visibility.
        if matches!(&trees[i], TokenTree::Ident(id) if id.to_string() == "pub") {
            i += 1;
            if matches!(&trees.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        let name = match &trees.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        i += 1;
        match &trees.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        // Consume the type up to a top-level `,` (angle brackets tracked so
        // `Map<String, Value>` survives).
        let mut angle = 0i32;
        while i < trees.len() {
            match &trees[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(name);
    }
    Ok(fields)
}

fn parse_variants(body: TokenStream) -> Result<Vec<(String, bool)>, String> {
    let trees = significant_trees(body);
    let mut variants = Vec::new();
    let mut i = 0;
    while i < trees.len() {
        let name = match &trees.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        let mut newtype = false;
        if let Some(TokenTree::Group(g)) = &trees.get(i) {
            match g.delimiter() {
                Delimiter::Parenthesis => {
                    let mut inner = significant_trees(g.stream());
                    // Drop a trailing comma, then a single type (possibly
                    // several tokens, e.g. `Vec < f64 >`) with no top-level
                    // comma = newtype.
                    if matches!(inner.last(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
                        inner.pop();
                    }
                    let mut angle = 0i32;
                    let mut commas = false;
                    for t in &inner {
                        match t {
                            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                                commas = true
                            }
                            _ => {}
                        }
                    }
                    if commas {
                        return Err(format!(
                            "vendored serde_derive: tuple variant `{name}` with >1 field unsupported"
                        ));
                    }
                    newtype = true;
                    i += 1;
                }
                Delimiter::Brace => {
                    return Err(format!(
                        "vendored serde_derive: struct variant `{name}` unsupported"
                    ));
                }
                _ => {}
            }
        }
        if matches!(&trees.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push((name, newtype));
    }
    Ok(variants)
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Derives `serde::Serialize` (value-tree flavor).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => return compile_error(&msg),
    };
    let code = match item {
        Item::Struct { name, fields } => {
            let mut inserts = String::new();
            for f in &fields {
                inserts.push_str(&format!(
                    "__map.insert({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f}));\n"
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut __map = ::serde::Map::new();\n\
                         {inserts}\
                         ::serde::Value::Object(__map)\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for (v, newtype) in &variants {
                if *newtype {
                    arms.push_str(&format!(
                        "{name}::{v}(__inner) => {{\n\
                             let mut __map = ::serde::Map::new();\n\
                             __map.insert({v:?}.to_string(), ::serde::Serialize::to_value(__inner));\n\
                             ::serde::Value::Object(__map)\n\
                         }}\n"
                    ));
                } else {
                    arms.push_str(&format!(
                        "{name}::{v} => ::serde::Value::String({v:?}.to_string()),\n"
                    ));
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().unwrap()
}

/// Derives `serde::Deserialize` (value-tree flavor).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => return compile_error(&msg),
    };
    let code = match item {
        Item::Struct { name, fields } => {
            let mut inits = String::new();
            for f in &fields {
                inits.push_str(&format!(
                    "{f}: ::serde::Deserialize::from_value(__obj.get({f:?}).ok_or_else(|| \
                     ::serde::DeError::custom(concat!(\"missing field `\", {f:?}, \"`\")))?)?,\n"
                ));
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__value: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         let __obj = __value.as_object().ok_or_else(|| \
                             ::serde::DeError::custom(concat!(\"expected object for \", {name:?})))?;\n\
                         ::std::result::Result::Ok({name} {{\n{inits}}})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut newtype_checks = String::new();
            for (v, newtype) in &variants {
                if *newtype {
                    newtype_checks.push_str(&format!(
                        "if let ::std::option::Option::Some(__inner) = __map.get({v:?}) {{\n\
                             return ::std::result::Result::Ok({name}::{v}(\
                                 ::serde::Deserialize::from_value(__inner)?));\n\
                         }}\n"
                    ));
                } else {
                    unit_arms.push_str(&format!(
                        "{v:?} => ::std::result::Result::Ok({name}::{v}),\n"
                    ));
                }
            }
            let object_arm = if newtype_checks.is_empty() {
                String::new()
            } else {
                format!(
                    "::serde::Value::Object(__map) => {{\n\
                         {newtype_checks}\
                         ::std::result::Result::Err(::serde::DeError::custom(\
                             concat!(\"unknown newtype variant object for \", {name:?})))\n\
                     }}\n"
                )
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__value: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match __value {{\n\
                             ::serde::Value::String(__s) => match __s.as_str() {{\n\
                                 {unit_arms}\
                                 __other => ::std::result::Result::Err(::serde::DeError::custom(\
                                     format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                             }},\n\
                             {object_arm}\
                             __other => ::std::result::Result::Err(::serde::DeError::custom(\
                                 format!(\"cannot deserialize {name} from {{__other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().unwrap()
}
