//! Offline vendored stand-in for `serde_json`.
//!
//! Provides [`to_string`] / [`to_string_pretty`] / [`from_str`], the
//! [`Value`]/[`Map`] re-exports, and a single-expression [`json!`] macro on
//! top of the local `serde` value tree. The text format is standard JSON;
//! numbers are `f64` (integers up to 2^53 round-trip exactly).

#![forbid(unsafe_code)]

use std::fmt::Write as _;

pub use serde::{DeError as Error, Map, Value};

/// Serializes a value to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any `Deserialize` type.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    T::from_value(&value)
}

/// Builds a [`Value`] from a single expression (subset of serde_json's
/// `json!`: no object/array literal syntax, just `From` conversions).
#[macro_export]
macro_rules! json {
    (null) => {
        $crate::Value::Null
    };
    ($e:expr) => {
        $crate::Value::from($e)
    };
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, n: f64) {
    if n.is_finite() {
        let _ = write!(out, "{n}");
    } else {
        // JSON has no non-finite numbers; emit null like serde_json does.
        out.push_str("null");
    }
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses a complete JSON document into a [`Value`].
pub fn parse_value(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::custom(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error::custom(format!(
                "unexpected input {other:?} at offset {}",
                self.pos
            ))),
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid utf-8 in number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("bad \\u escape"))?;
                            // Surrogate pairs are not reconstructed; BMP only.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("bad \\u codepoint"))?,
                            );
                            self.pos += 4;
                        }
                        other => return Err(Error::custom(format!("bad escape {other:?}"))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::custom("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]`, found {other:?}"
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}`, found {other:?}"
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_nested() {
        let text = r#"{"a": [1, 2.5, "x"], "b": {"c": true, "d": null}}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(v["a"][1], 2.5);
        assert_eq!(v["a"][2], "x");
        assert_eq!(v["b"]["c"], true);
        assert!(v["b"]["d"].is_null());
        let back: Value = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(v, back);
        let back: Value = from_str(&to_string_pretty(&v).unwrap()).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn string_escapes() {
        let v = Value::String("say \"hi\"\nnew\tline\\".to_string());
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn numbers_round_trip() {
        for n in [0.0, -1.5, 1.2e-6, 3.75, 1e15, -7.0] {
            let text = to_string(&n).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(n, back, "{text}");
        }
    }

    #[test]
    fn json_macro() {
        assert_eq!(json!(2.5), Value::Number(2.5));
        assert_eq!(json!("x"), Value::String("x".into()));
        assert_eq!(json!(null), Value::Null);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{invalid").is_err());
        assert!(from_str::<Value>("[1, 2] trailing").is_err());
    }
}
