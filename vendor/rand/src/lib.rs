//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment has no network access and no crates.io cache, so
//! this workspace vendors the *subset* of the rand 0.9 API it actually uses:
//! [`StdRng`] (`seed_from_u64`), [`Rng::random`], [`Rng::random_range`]
//! (integer and float ranges), slice `shuffle` / `choose` /
//! `choose_multiple`, and the [`prelude`]. The generator is xoshiro256++
//! seeded through SplitMix64 — statistically solid for the seeded,
//! deterministic workloads of this repository, but **not** a drop-in
//! bit-for-bit replacement for the real crate's stream.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Low-level generator interface: a source of random `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of seeded generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the generator's native output.
pub trait Random: Sized {
    /// Samples one value.
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for f64 {
    #[inline]
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    #[inline]
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Random for u64 {
    #[inline]
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    #[inline]
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Random for usize {
    #[inline]
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Random for bool {
    #[inline]
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Samples one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Rejection sampling on the top bits to avoid modulo bias.
                let zone = u128::from(u64::MAX) + 1;
                let limit = zone - zone % span;
                loop {
                    let v = u128::from(rng.next_u64());
                    if v < limit {
                        return (self.start as i128 + (v % span) as i128) as $t;
                    }
                }
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_int_range_inclusive {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                // Rejection sampling on the top bits to avoid modulo bias.
                let zone = u128::from(u64::MAX) + 1;
                let limit = zone - zone % span;
                loop {
                    let v = u128::from(rng.next_u64());
                    if v < limit {
                        return (start as i128 + (v % span) as i128) as $t;
                    }
                }
            }
        }
    )*};
}

impl_int_range_inclusive!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f64::random_from(rng)
    }
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` (uniform over its natural domain;
    /// `[0, 1)` for floats).
    #[inline]
    fn random<T: Random>(&mut self) -> T {
        T::random_from(self)
    }

    /// Samples uniformly from a half-open range.
    #[inline]
    fn random_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Slice shuffling and sampling (subset of `rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// In-place Fisher–Yates shuffling.
    pub trait SliceRandom {
        /// Shuffles the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }

    /// Uniform selection from a slice.
    pub trait IndexedRandom {
        /// Element type.
        type Output;

        /// One uniform element (`None` for an empty slice).
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Output>;

        /// `amount` distinct uniform elements (all of them if
        /// `amount >= len`), in selection order.
        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Output>;
    }

    impl<T> IndexedRandom for [T] {
        type Output = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }

        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            let amount = amount.min(self.len());
            let mut indices: Vec<usize> = (0..self.len()).collect();
            // Partial Fisher–Yates: the first `amount` slots become the sample.
            for i in 0..amount {
                let j = rng.random_range(i..indices.len());
                indices.swap(i, j);
            }
            indices
                .into_iter()
                .take(amount)
                .map(|i| &self[i])
                .collect::<Vec<_>>()
                .into_iter()
        }
    }
}

/// The generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ seeded via SplitMix64 — the workspace's standard
    /// deterministic generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the small generator is the same xoshiro core here.
    pub type SmallRng = StdRng;
}

/// Common imports, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::{SmallRng, StdRng};
    pub use crate::seq::{IndexedRandom, SliceRandom};
    pub use crate::{Rng, RngCore, SeedableRng};
}

pub use rngs::StdRng;

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            let v = rng.random_range(0..5usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all range values reachable");
        for _ in 0..1_000 {
            let v: i64 = rng.random_range(1..10);
            assert!((1..10).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_multiple_distinct() {
        let mut rng = StdRng::seed_from_u64(4);
        let v: Vec<usize> = (0..20).collect();
        let picked: Vec<usize> = v.choose_multiple(&mut rng, 8).copied().collect();
        assert_eq!(picked.len(), 8);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 8);
    }
}
